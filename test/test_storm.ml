(* Tests for the storm storage layer and its consumers: writer
   semantics and boundary accounting, armed kills and dead mode,
   seed-deterministic io_* fault application, fsck detection/repair
   (torn tails, orphan temps, corrupt-checkpoint quarantine), the
   orphan sweep on checkpoint-directory open, the crash-point torture
   harness, and the headline property — recovery converges to the
   byte-identical crash-free result from a journal truncated at any
   offset and a checkpoint bit-flipped at any position. *)

module S = Rwc_storm
module F = Rwc_fsck
module R = Rwc_recover
module J = Rwc_journal
module Runner = Rwc_sim.Runner

let rec rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf p
        else try Sys.remove p with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let with_temp_dir f =
  let dir = Filename.temp_file "rwc_test_storm" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let with_storm f = Fun.protect ~finally:S.reset (fun () -> S.reset (); f ())
let slurp p = In_channel.with_open_bin p In_channel.input_all

let spew p s =
  Out_channel.with_open_bin p (fun oc -> Out_channel.output_string oc s)

let io_plan s =
  match S.plan_of_string s with Ok p -> p | Error e -> Alcotest.fail e

(* --- writer ------------------------------------------------------------ *)

let test_writer_roundtrip () =
  with_storm (fun () ->
      with_temp_dir (fun dir ->
          let path = Filename.concat dir "out.bin" in
          let w = S.Writer.create path in
          S.Writer.write w "hello ";
          S.Writer.write w "world";
          Alcotest.(check int) "logical position counts accepted bytes" 11
            (S.Writer.logical_bytes w);
          S.Writer.close w;
          Alcotest.(check string) "bytes land verbatim" "hello world"
            (slurp path);
          (* Append picks up at the existing size. *)
          let w = S.Writer.append path in
          Alcotest.(check int) "append starts at file size" 11
            (S.Writer.logical_bytes w);
          S.Writer.write w "!";
          S.Writer.close w;
          Alcotest.(check string) "appended" "hello world!" (slurp path);
          (* Close is idempotent. *)
          S.Writer.close w))

let test_writer_open_failure_is_sys_error () =
  with_storm (fun () ->
      match S.Writer.create "/nonexistent-dir-xyz/file" with
      | exception Sys_error _ -> ()
      | _ -> Alcotest.fail "expected Sys_error")

let test_boundary_accounting () =
  with_storm (fun () ->
      with_temp_dir (fun dir ->
          Alcotest.(check int) "fresh ordinal" 0 (S.boundaries ());
          let path = Filename.concat dir "a" in
          let w = S.Writer.create path in
          S.Writer.write w "x";
          S.Writer.close w;
          (* close = flush (1 write boundary: non-empty) + sync. *)
          let writes, syncs, renames = S.counts () in
          Alcotest.(check int) "one write boundary" 1 writes;
          Alcotest.(check int) "one sync boundary" 1 syncs;
          Alcotest.(check int) "no renames yet" 0 renames;
          (* An empty flush is not a boundary. *)
          let w = S.Writer.create path in
          S.Writer.flush w;
          S.Writer.close w;
          let writes', _, _ = S.counts () in
          Alcotest.(check int) "empty flush is free" 1 writes';
          S.rename ~src:path ~dst:(Filename.concat dir "b");
          let _, _, renames' = S.counts () in
          Alcotest.(check int) "rename counted" 1 renames'))

let test_kill_and_dead_mode () =
  with_storm (fun () ->
      with_temp_dir (fun dir ->
          let path = Filename.concat dir "victim" in
          let w = S.Writer.create path in
          S.Writer.write w "0123456789";
          S.arm_kill (S.boundaries ());
          (match S.Writer.flush w with
          | () -> Alcotest.fail "armed kill did not fire"
          | exception S.Killed { kind = S.Write; _ } -> ()
          | exception S.Killed { kind; _ } ->
              Alcotest.failf "killed at %s, expected write"
                (S.boundary_name kind));
          Alcotest.(check bool) "dead after the kill" true (S.dead ());
          (* The torn half-chunk is on disk; nothing more ever lands. *)
          let torn = slurp path in
          Alcotest.(check bool) "tail is torn" true
            (String.length torn < 10
            && torn = String.sub "0123456789" 0 (String.length torn));
          S.Writer.write w "more";
          S.Writer.close w;
          Alcotest.(check string) "dead mode is inert" torn (slurp path);
          S.rename ~src:path ~dst:(Filename.concat dir "never");
          Alcotest.(check bool) "dead rename is a no-op" true
            (Sys.file_exists path);
          (* reset revives the layer. *)
          S.reset ();
          Alcotest.(check bool) "reset leaves dead mode" false (S.dead ())))

let test_plan_of_string_rejects_non_io () =
  (match S.plan_of_string "io_short=0.5,io_bitflip=0.1,seed=3" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "io-only plan rejected: %s" e);
  match S.plan_of_string "io_short=0.5,bvt-fail=0.2" with
  | Ok _ -> Alcotest.fail "accepted a non-storage component"
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "error names the offender (%s)" e)
        true
        (String.length e > 0)

let test_fault_application_deterministic () =
  let write_under plan dir n =
    S.reset ();
    S.inject (Rwc_fault.compile plan);
    let path = Filename.concat dir (Printf.sprintf "f%d" n) in
    let w = S.Writer.create path in
    for i = 0 to 9 do
      S.Writer.write w (Printf.sprintf "line %d: some payload bytes\n" i);
      S.Writer.flush w
    done;
    S.Writer.close w;
    slurp path
  in
  with_storm (fun () ->
      with_temp_dir (fun dir ->
          let plan = io_plan "io_short=0.3,io_enospc=0.2,io_bitflip=0.2,seed=5" in
          let a = write_under plan dir 0 in
          let b = write_under plan dir 1 in
          Alcotest.(check string) "same plan, same damage" a b;
          let c =
            write_under (io_plan "io_short=0.3,io_enospc=0.2,io_bitflip=0.2,seed=6")
              dir 2
          in
          let clean = write_under (io_plan "none") dir 3 in
          Alcotest.(check bool) "faults actually fired" true (a <> clean);
          Alcotest.(check bool) "different seed, different damage" true
            (a <> c || String.length a <> String.length c)))

let test_torn_rename_loses_commit () =
  (* Sweep seeds until both outcomes are observed: the rename lost
     (src stays, dst untouched) and the rename landing. *)
  with_storm (fun () ->
      with_temp_dir (fun dir ->
          let lost = ref false and landed = ref false in
          let seed = ref 0 in
          while (not (!lost && !landed)) && !seed < 32 do
            incr seed;
            S.reset ();
            S.inject
              (Rwc_fault.compile
                 (io_plan (Printf.sprintf "io_torn_rename=0.5,seed=%d" !seed)));
            let src = Filename.concat dir "src"
            and dst = Filename.concat dir "dst" in
            spew src "payload";
            if Sys.file_exists dst then Sys.remove dst;
            S.rename ~src ~dst;
            if Sys.file_exists src then lost := true;
            if Sys.file_exists dst then landed := true
          done;
          Alcotest.(check bool) "both outcomes reachable" true
            (!lost && !landed)))

(* --- fsck -------------------------------------------------------------- *)

(* A real journal with [n] parseable lines, produced by the emitting
   code itself so the fixtures track the format. *)
let write_journal path =
  let jnl = J.create ~path () in
  J.start_run jnl ~policy:"a" ~seed:1 ~horizon_s:100.0 ~n_links:2;
  J.commit jnl ~link:0 ~now:0.0 ~gbps:100 ~up:true;
  J.outage jnl ~link:1 ~now:50.0 ~up:false;
  J.close jnl;
  slurp path

let append path s =
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc s;
  close_out oc

let scan ?(repair = true) ?journal ?checkpoints () =
  match F.scan ~repair ?journal ?checkpoints () with
  | Ok r -> r
  | Error e -> Alcotest.failf "fsck: %s" e

let test_fsck_truncates_torn_tail () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "j.jsonl" in
      let good = write_journal path in
      append path "{\"t\":3.0,\"link\":1,\"ev\":\"comm";
      let r = scan ~journal:path () in
      (match r.F.findings with
      | [ { F.f_action = F.Repaired; f_problem; _ } ] ->
          Alcotest.(check string) "problem named" "torn journal tail" f_problem
      | _ -> Alcotest.fail "expected exactly one repaired finding");
      Alcotest.(check string) "tail cut back to the last valid line" good
        (slurp path);
      Alcotest.(check int) "nothing unrepaired" 0 (F.unrepaired r);
      (* Idempotence: a second scan is clean. *)
      Alcotest.(check int) "re-scan is clean" 0
        (List.length (scan ~journal:path ()).F.findings))

let test_fsck_notes_interior_damage () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "j.jsonl" in
      let _ = write_journal path in
      let good = slurp path in
      (* Interior bad line followed by a valid line: unrepairable. *)
      append path "garbage not json\n";
      append path
        "{\"t\":60.0,\"link\":1,\"ev\":\"outage\",\"up\":true,\"span\":0}\n";
      let damaged = slurp path in
      let r = scan ~journal:path () in
      Alcotest.(check bool) "interior damage only noted" true
        (List.for_all (fun f -> f.F.f_action = F.Noted) r.F.findings);
      Alcotest.(check int) "counts as unrepaired" (List.length r.F.findings)
        (F.unrepaired r);
      Alcotest.(check bool) "at least one finding" true (r.F.findings <> []);
      Alcotest.(check string) "file untouched" damaged (slurp path);
      ignore good)

let test_fsck_dry_run_touches_nothing () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "j.jsonl" in
      let _ = write_journal path in
      append path "{\"torn";
      let damaged = slurp path in
      let r = scan ~repair:false ~journal:path () in
      Alcotest.(check bool) "dry-run findings all noted" true
        (r.F.findings <> []
        && List.for_all (fun f -> f.F.f_action = F.Noted) r.F.findings);
      Alcotest.(check string) "file untouched" damaged (slurp path))

let test_fsck_missing_journal_is_error () =
  with_temp_dir (fun dir ->
      match F.scan ~journal:(Filename.concat dir "absent.jsonl") () with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "missing journal accepted")

let make_ctx ?(every = 16) ?(resume = false) ?journal_path dir =
  match R.create ~dir ~every ?journal_path ~faults:Rwc_fault.none ~resume () with
  | Ok pair -> pair
  | Error e -> Alcotest.failf "create: %s" e

let save_checkpoints dir n =
  let ctx, _ = make_ctx dir in
  for i = 0 to n - 1 do
    R.save ctx ~seed:7 ~days:2.0 ~journal_events:i ~journal_bytes:(10 * i)
      ~completed:[] ~run:None
  done

let test_fsck_checkpoint_dir () =
  with_temp_dir (fun dir ->
      save_checkpoints dir 2;
      (* One orphan temp and one bit-flipped checkpoint. *)
      spew (Filename.concat dir "ckpt-000009.json.tmp") "partial";
      let newest = Filename.concat dir "ckpt-000001.json" in
      let s = slurp newest in
      let b = Bytes.of_string s in
      let i = String.length s / 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
      spew newest (Bytes.to_string b);
      let r = scan ~checkpoints:dir () in
      let actions = List.map (fun f -> f.F.f_action) r.F.findings in
      Alcotest.(check bool) "orphan removed + corrupt quarantined" true
        (List.mem F.Removed actions && List.mem F.Quarantined actions);
      Alcotest.(check bool) "tmp gone" false
        (Sys.file_exists (Filename.concat dir "ckpt-000009.json.tmp"));
      Alcotest.(check bool) "quarantined file kept for forensics" true
        (Sys.file_exists (newest ^ ".corrupt"));
      (* The quarantined file is out of the resume chain. *)
      (match R.load_latest dir with
      | Ok (Some c) ->
          Alcotest.(check int) "resume falls back past quarantine" 0
            c.R.ck_journal_events
      | Ok None -> Alcotest.fail "no checkpoint survives"
      | Error e -> Alcotest.failf "load_latest: %s" e);
      Alcotest.(check int) "re-scan is clean" 0
        (List.length (scan ~checkpoints:dir ()).F.findings))

let test_fsck_report_json_deterministic () =
  with_temp_dir (fun dir ->
      save_checkpoints dir 1;
      spew (Filename.concat dir "b.tmp") "x";
      spew (Filename.concat dir "a.tmp") "x";
      let r = scan ~repair:false ~checkpoints:dir () in
      let paths = List.map (fun f -> f.F.f_path) r.F.findings in
      Alcotest.(check bool) "findings sorted by path" true
        (paths = List.sort compare paths);
      match F.report_to_json r with
      | Rwc_obs.Json.Assoc kv ->
          Alcotest.(check bool) "schema tagged" true
            (List.assoc_opt "schema" kv
            = Some (Rwc_obs.Json.String "rwc-fsck/1"))
      | _ -> Alcotest.fail "report is not an object")

(* --- recover integration ----------------------------------------------- *)

let test_orphan_sweep_on_open () =
  with_temp_dir (fun dir ->
      save_checkpoints dir 1;
      spew (Filename.concat dir "ckpt-000042.json.tmp") "partial";
      Alcotest.(check (list string))
        "orphan listed" [ "ckpt-000042.json.tmp" ] (R.orphan_tmps dir);
      (* Reopening the directory sweeps it. *)
      let _ = make_ctx dir in
      Alcotest.(check (list string)) "swept on open" [] (R.orphan_tmps dir);
      Alcotest.(check bool) "real checkpoints survive the sweep" true
        (Sys.file_exists (Filename.concat dir "ckpt-000000.json")))

let test_load_resumable_respects_journal () =
  with_temp_dir (fun dir ->
      let jpath = Filename.concat dir "j.jsonl" in
      save_checkpoints dir 3;  (* marks at bytes 0, 10, 20 *)
      spew jpath (String.make 12 'x');
      (match R.load_resumable ~journal_path:jpath dir with
      | Ok (Some c) ->
          Alcotest.(check int)
            "newest checkpoint covered by the journal wins" 1
            c.R.ck_journal_events
      | Ok None -> Alcotest.fail "expected a usable checkpoint"
      | Error e -> Alcotest.failf "load_resumable: %s" e);
      (* A missing journal only permits the zero-byte checkpoint. *)
      Sys.remove jpath;
      match R.load_resumable ~journal_path:jpath dir with
      | Ok (Some c) ->
          Alcotest.(check int) "missing journal means zero bytes" 0
            c.R.ck_journal_events
      | Ok None -> Alcotest.fail "expected the zero-byte checkpoint"
      | Error e -> Alcotest.failf "load_resumable: %s" e)

(* --- torture ------------------------------------------------------------ *)

let test_torture_sampled () =
  with_temp_dir (fun dir ->
      match
        Rwc_sim.Torture.run ~days:0.125 ~ducts:8 ~seed:3 ~every:4 ~sample:3
          ~root:(Filename.concat dir "t") ()
      with
      | Error e -> Alcotest.failf "torture: %s" e
      | Ok s ->
          Alcotest.(check bool) "boundaries found" true (s.Rwc_sim.Torture.boundaries > 0);
          Alcotest.(check bool) "cases ran" true
            (List.length s.Rwc_sim.Torture.cases >= 2);
          List.iter
            (fun c ->
              if not c.Rwc_sim.Torture.ok then
                Alcotest.failf "boundary %d (%s): %s" c.Rwc_sim.Torture.ordinal
                  c.Rwc_sim.Torture.kind c.Rwc_sim.Torture.detail)
            s.Rwc_sim.Torture.cases;
          Alcotest.(check int) "no failures" 0 s.Rwc_sim.Torture.failed)

(* --- arbitrary-damage recovery property --------------------------------- *)

(* Template: one completed checkpointed+journaled run whose artifacts
   each property case copies, damages, fscks, and resumes.  Built once;
   the directory lives until process exit. *)
let damage_template =
  lazy
    (let dir = Filename.temp_file "rwc_test_storm_tpl" "" in
     Sys.remove dir;
     Sys.mkdir dir 0o700;
     at_exit (fun () -> rm_rf dir);
     let backbone = Rwc_topology.Backbone.synthetic ~ducts:10 ~seed:3 in
     let config jnl =
       {
         Runner.default_config with
         Runner.days = 0.25;
         seed = 3;
         journal = jnl;
       }
     in
     let ckdir = Filename.concat dir "ck" in
     let jpath = Filename.concat dir "journal.jsonl" in
     let ctx, _ = make_ctx ~every:4 ~journal_path:jpath ckdir in
     let jnl = J.create ~path:jpath () in
     let golden_pp =
       match
         Runner.run_recoverable ~config:(config jnl) ~backbone ~ctx
           ~resume_from:None
           ~policies:[ Runner.Adaptive Runner.Efficient ]
           ()
       with
       | [ Runner.Ran r ] -> Format.asprintf "%a" Runner.pp_report r
       | _ -> failwith "template run did not complete"
     in
     (dir, backbone, config, golden_pp, slurp jpath))

let copy_template ~into =
  let tpl, _, _, _, _ = Lazy.force damage_template in
  Sys.mkdir into 0o700;
  Sys.mkdir (Filename.concat into "ck") 0o700;
  let copy rel =
    spew (Filename.concat into rel) (slurp (Filename.concat tpl rel))
  in
  copy "journal.jsonl";
  Array.iter
    (fun n -> copy (Filename.concat "ck" n))
    (Sys.readdir (Filename.concat tpl "ck"))

(* Resume exactly the way `rwc simulate --checkpoint --resume` does. *)
let resume_attempt dir =
  let _, backbone, config, _, _ = Lazy.force damage_template in
  let ckdir = Filename.concat dir "ck" in
  let jpath = Filename.concat dir "journal.jsonl" in
  match
    R.create ~dir:ckdir ~every:4 ~journal_path:jpath ~faults:Rwc_fault.none
      ~resume:true ()
  with
  | Error e -> Error ("create: " ^ e)
  | Ok (ctx, resume_from) -> (
      let jnl =
        match resume_from with
        | Some c ->
            J.resume ~path:jpath ~at:c.R.ck_journal_bytes
              ~events:c.R.ck_journal_events ()
        | None -> Ok (J.create ~path:jpath ())
      in
      match jnl with
      | Error e -> Error ("journal: " ^ e)
      | Ok jnl -> (
          match
            Runner.run_recoverable ~config:(config jnl) ~backbone ~ctx
              ~resume_from
              ~policies:[ Runner.Adaptive Runner.Efficient ]
              ()
          with
          | [ Runner.Ran r ] -> Ok (Format.asprintf "%a" Runner.pp_report r)
          | [ Runner.Replayed { pp; _ } ] -> Ok pp
          | _ -> Error "expected one outcome"))

let prop_recovers_from_arbitrary_damage =
  QCheck.Test.make
    ~name:"storm: truncate journal anywhere + flip any checkpoint bit, fsck, \
           resume byte-identically"
    ~count:6
    QCheck.(pair (int_range 0 1_000_000) (int_range 0 1_000_000))
    (fun (cut_raw, flip_raw) ->
      let _, _, _, golden_pp, golden_journal = Lazy.force damage_template in
      with_temp_dir (fun scratch ->
          let dir = Filename.concat scratch "case" in
          copy_template ~into:dir;
          let jpath = Filename.concat dir "journal.jsonl" in
          let ckdir = Filename.concat dir "ck" in
          (* Truncate the journal at an arbitrary byte offset. *)
          let cut = cut_raw mod (String.length golden_journal + 1) in
          spew jpath (String.sub golden_journal 0 cut);
          (* Flip an arbitrary bit of the newest checkpoint. *)
          let newest =
            let names =
              Sys.readdir ckdir |> Array.to_list
              |> List.filter (fun n -> Filename.check_suffix n ".json")
              |> List.sort compare |> List.rev
            in
            Filename.concat ckdir (List.hd names)
          in
          let s = slurp newest in
          let flip = flip_raw mod (String.length s * 8) in
          let b = Bytes.of_string s in
          let i = flip / 8 in
          Bytes.set b i
            (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (flip mod 8))));
          spew newest (Bytes.to_string b);
          (* Offline repair must converge (second scan clean)... *)
          let repaired =
            match F.scan ~repair:true ~journal:jpath ~checkpoints:ckdir () with
            | Ok _ -> (
                match
                  F.scan ~repair:true ~journal:jpath ~checkpoints:ckdir ()
                with
                | Ok r -> r.F.findings = []
                | Error _ -> false)
            | Error _ -> false
          in
          (* ...and resume must land on the golden bytes. *)
          repaired
          &&
          match resume_attempt dir with
          | Error e -> QCheck.Test.fail_report ("resume: " ^ e)
          | Ok pp ->
              pp = golden_pp && slurp jpath = golden_journal))

let suite =
  [
    Alcotest.test_case "writer round-trip" `Quick test_writer_roundtrip;
    Alcotest.test_case "writer open failure" `Quick
      test_writer_open_failure_is_sys_error;
    Alcotest.test_case "boundary accounting" `Quick test_boundary_accounting;
    Alcotest.test_case "armed kill + dead mode" `Quick test_kill_and_dead_mode;
    Alcotest.test_case "storm plan rejects non-io" `Quick
      test_plan_of_string_rejects_non_io;
    Alcotest.test_case "fault application deterministic" `Quick
      test_fault_application_deterministic;
    Alcotest.test_case "torn rename loses the commit" `Quick
      test_torn_rename_loses_commit;
    Alcotest.test_case "fsck truncates torn tail" `Quick
      test_fsck_truncates_torn_tail;
    Alcotest.test_case "fsck notes interior damage" `Quick
      test_fsck_notes_interior_damage;
    Alcotest.test_case "fsck dry-run touches nothing" `Quick
      test_fsck_dry_run_touches_nothing;
    Alcotest.test_case "fsck missing journal errors" `Quick
      test_fsck_missing_journal_is_error;
    Alcotest.test_case "fsck checkpoint dir" `Quick test_fsck_checkpoint_dir;
    Alcotest.test_case "fsck report deterministic" `Quick
      test_fsck_report_json_deterministic;
    Alcotest.test_case "orphan sweep on open" `Quick test_orphan_sweep_on_open;
    Alcotest.test_case "journal-aware checkpoint selection" `Quick
      test_load_resumable_respects_journal;
    Alcotest.test_case "torture (sampled)" `Slow test_torture_sampled;
    QCheck_alcotest.to_alcotest prop_recovers_from_arbitrary_damage;
  ]

module J = Rwc_journal
module Json = Rwc_obs.Json
module Runner = Rwc_sim.Runner

(* --- record serialization -------------------------------------------------- *)

let all_kinds =
  [
    J.Run_start
      { policy = "adaptive-efficient-bvt"; seed = 7; horizon_s = 172800.0; n_links = 43 };
    J.Observe { snr_db = 14.25; fresh = true };
    J.Observe { snr_db = 9.5; fresh = false };
    J.Intent { action = J.Step_up; from_gbps = 100; to_gbps = 150 };
    J.Intent { action = J.Force_static; from_gbps = 200; to_gbps = 100 };
    J.Guard { verdict = J.Admitted };
    J.Guard { verdict = J.Quarantined };
    J.Fault { outcome = J.Timed_out; attempt = 2 };
    J.Commit { gbps = 150; up = true };
    J.Commit { gbps = 0; up = false };
    J.Outage { up = false };
    J.Anomaly { detector = J.Cusum; snr_db = 11.125 };
  ]

let test_record_round_trip () =
  List.iteri
    (fun i kind ->
      let r = { J.t = 900.0 *. float_of_int i; link = i - 1; span = i; kind } in
      let line = Json.to_string (J.record_to_json r) in
      match Json.parse line with
      | Error e -> Alcotest.fail e
      | Ok v -> (
          match J.record_of_json v with
          | Error e -> Alcotest.fail e
          | Ok r' ->
              Alcotest.(check bool)
                (Printf.sprintf "record %d round-trips (%s)" i line)
                true (r = r')))
    all_kinds

let test_record_of_json_rejects () =
  let bad s =
    match Json.parse s with
    | Error _ -> true
    | Ok v -> ( match J.record_of_json v with Error _ -> true | Ok _ -> false)
  in
  Alcotest.(check bool) "unknown ev" true
    (bad {|{"t":0.0,"link":1,"span":0,"ev":"warp"}|});
  Alcotest.(check bool) "missing field" true
    (bad {|{"t":0.0,"link":1,"ev":"commit","gbps":100}|});
  Alcotest.(check bool) "non-object" true (bad "[1,2]")

(* --- file io + segmentation ------------------------------------------------ *)

let test_read_file_and_segments () =
  let path = Filename.temp_file "rwc_test_journal" ".jsonl" in
  let jnl = J.create ~path () in
  J.start_run jnl ~policy:"a" ~seed:1 ~horizon_s:100.0 ~n_links:2;
  J.commit jnl ~link:0 ~now:0.0 ~gbps:100 ~up:true;
  J.start_run jnl ~policy:"b" ~seed:2 ~horizon_s:100.0 ~n_links:2;
  J.commit jnl ~link:1 ~now:0.0 ~gbps:100 ~up:true;
  J.outage jnl ~link:1 ~now:50.0 ~up:false;
  Alcotest.(check int) "events counted" 5 (J.events_emitted jnl);
  J.close jnl;
  (match J.read_file path with
  | Error e -> Alcotest.fail e
  | Ok (records, skipped) ->
      Alcotest.(check int) "no lines skipped" 0 skipped;
      Alcotest.(check int) "all lines parsed" 5 (List.length records);
      let segs = J.segments records in
      Alcotest.(check int) "two segments" 2 (List.length segs);
      List.iter2
        (fun seg n -> Alcotest.(check int) "segment size" n (List.length seg))
        segs [ 2; 3 ];
      (* A headerless prefix forms its own leading segment. *)
      let headerless = J.segments (List.tl records) in
      Alcotest.(check int) "headerless prefix splits" 2 (List.length headerless));
  (* A malformed line is skipped and counted by default, and a
     fail-fast error carrying its line number under ~strict. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "not json\n";
  close_out oc;
  (match J.read_file path with
  | Error e -> Alcotest.fail e
  | Ok (records, skipped) ->
      Alcotest.(check int) "bad line skipped" 1 skipped;
      Alcotest.(check int) "good lines survive" 5 (List.length records));
  (match J.read_file ~strict:true path with
  | Ok _ -> Alcotest.fail "strict accepted a malformed line"
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "strict error names the line (%s)" e)
        true
        (String.length e > 0));
  Sys.remove path

(* --- disarmed sink --------------------------------------------------------- *)

let test_disarmed_is_inert () =
  let jnl = J.disarmed in
  Alcotest.(check bool) "not armed" false (J.armed jnl);
  J.start_run jnl ~policy:"x" ~seed:0 ~horizon_s:1.0 ~n_links:1;
  J.observe jnl ~link:0 ~now:0.0 ~snr_db:14.0 ~fresh:true;
  J.commit jnl ~link:0 ~now:0.0 ~gbps:100 ~up:true;
  Alcotest.(check int) "nothing emitted" 0 (J.events_emitted jnl);
  Alcotest.(check bool) "no slo summary" true (J.finish_run jnl = None);
  J.close jnl

(* --- slo grammar ----------------------------------------------------------- *)

let test_slo_grammar_round_trip () =
  let cases = [ "none"; "default"; "availability=99.9,class=150,at-class=90" ] in
  List.iter
    (fun s ->
      match J.Slo.of_string s with
      | Error e -> Alcotest.fail e
      | Ok plan -> (
          let printed = J.Slo.to_string plan in
          match J.Slo.of_string printed with
          | Error e -> Alcotest.fail e
          | Ok plan' ->
              Alcotest.(check bool)
                (Printf.sprintf "%S -> %S round-trips" s printed)
                true (plan = plan')))
    cases;
  Alcotest.(check bool) "unknown key rejected" true
    (match J.Slo.of_string "warp=9" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "bad value rejected" true
    (match J.Slo.of_string "class=fast" with Error _ -> true | Ok _ -> false)

(* --- slo engine on a hand-built segment ------------------------------------ *)

let test_slo_measures_hand_built () =
  (* One link over a 86400 s day: starts at 100 G, steps up to 200 G at
     t=21600 (committed), steps down again at t=64800.  One committed
     reduction = 1 flap/day; the link is at or above 200 G for half the
     day. *)
  let r t kind = { J.t; link = 0; span = 0; kind } in
  let seg =
    [
      {
        J.t = 0.0;
        link = -1;
        span = 0;
        kind = J.Run_start { policy = "t"; seed = 0; horizon_s = 86400.0; n_links = 1 };
      };
      r 0.0 (J.Commit { gbps = 100; up = true });
      r 21600.0 (J.Intent { action = J.Step_up; from_gbps = 100; to_gbps = 200 });
      r 21600.0 (J.Guard { verdict = J.Admitted });
      r 21600.0 (J.Fault { outcome = J.Committed; attempt = 1 });
      r 21600.0 (J.Commit { gbps = 200; up = true });
      r 64800.0 (J.Intent { action = J.Step_down; from_gbps = 200; to_gbps = 100 });
      r 64800.0 (J.Guard { verdict = J.Admitted });
      r 64800.0 (J.Fault { outcome = J.Committed; attempt = 1 });
      r 64800.0 (J.Commit { gbps = 100; up = true });
    ]
  in
  let config = { J.Slo.default_config with class_gbps = 200 } in
  match J.Slo.of_records config seg with
  | Error e -> Alcotest.fail e
  | Ok s ->
      Alcotest.(check int) "one link" 1 (Array.length s.J.Slo.links);
      let v = s.J.Slo.links.(0) in
      Alcotest.(check (float 1e-9)) "always up" 100.0
        v.J.Slo.measure.J.Slo.availability_pct;
      Alcotest.(check (float 1e-9)) "half the day at 200G" 50.0
        v.J.Slo.measure.J.Slo.class_time_pct;
      Alcotest.(check (float 1e-9)) "one flap per day" 1.0
        v.J.Slo.measure.J.Slo.flaps_per_day;
      Alcotest.(check (float 1e-9)) "never quarantined" 0.0
        v.J.Slo.measure.J.Slo.quarantine_pct;
      (* class target is 95% of time at 200 G: 50% violates it. *)
      Alcotest.(check bool) "at-class violation reported" true
        (v.J.Slo.violations <> []);
      Alcotest.(check int) "counted as violated" 1 s.J.Slo.violated

(* --- integration: a real run through the journal --------------------------- *)

let journal_config jnl =
  {
    Runner.default_config with
    days = 2.0;
    seed = 7;
    faults = Rwc_fault.default;
    guard = Rwc_guard.default;
    journal = jnl;
  }

let run_with_journal () =
  let path = Filename.temp_file "rwc_test_journal_run" ".jsonl" in
  let jnl = J.create ~path ~slo:J.Slo.default () in
  let report =
    Runner.run ~config:(journal_config jnl) (Runner.Adaptive Runner.Efficient)
  in
  J.close jnl;
  let records =
    match J.read_file path with Ok (r, _) -> r | Error e -> Alcotest.fail e
  in
  Sys.remove path;
  (report, records)

let run_and_records = lazy (run_with_journal ())

let test_event_ordering () =
  let _, records = Lazy.force run_and_records in
  (match records with
  | { J.kind = J.Run_start _; link = -1; _ } :: _ -> ()
  | _ -> Alcotest.fail "journal does not start with a run header");
  (* Timestamps are non-decreasing in file order. *)
  let _ =
    List.fold_left
      (fun prev r ->
        Alcotest.(check bool) "monotone time" true (r.J.t >= prev);
        r.J.t)
      neg_infinity records
  in
  (* Per link and timestamp, the decision chain is ordered: any anomaly
     fires before the observation, the observation precedes the intent,
     the intent precedes the guard verdict. *)
  let rank r =
    match r.J.kind with
    | J.Anomaly _ -> 0
    | J.Observe _ -> 1
    | J.Intent _ -> 2
    | J.Guard { verdict = J.Admitted | J.Damped | J.Deferred | J.Stale_data | J.Held } ->
        3
    | _ -> -1
  in
  let tbl = Hashtbl.create 97 in
  List.iter
    (fun r ->
      let k = rank r in
      if k >= 0 then begin
        let key = (r.J.link, r.J.t) in
        let prev = try Hashtbl.find tbl key with Not_found -> -1 in
        Alcotest.(check bool)
          (Printf.sprintf "chain order at link=%d t=%.1f" r.J.link r.J.t)
          true (k >= prev);
        Hashtbl.replace tbl key k
      end)
    records;
  let anomalies =
    List.length
      (List.filter (fun r -> match r.J.kind with J.Anomaly _ -> true | _ -> false) records)
  in
  Alcotest.(check bool) "detectors fired at least once" true (anomalies > 0)

let test_chain_reconstruction () =
  let _, records = Lazy.force run_and_records in
  (* Every decision-stage guard verdict is immediately preceded, in its
     link's stream, by the intent it judged; every successful fault is
     immediately followed by the commit it produced. *)
  let by_link = Hashtbl.create 97 in
  List.iter
    (fun r ->
      if r.J.link >= 0 then
        Hashtbl.replace by_link r.J.link
          (r :: (try Hashtbl.find by_link r.J.link with Not_found -> [])))
    records;
  let intents = ref 0 in
  Hashtbl.iter
    (fun link stream_rev ->
      let stream = List.rev stream_rev in
      let rec walk = function
        | ({ J.kind = J.Intent _; _ } as i)
          :: ({ J.kind = J.Guard { verdict }; _ } as g)
          :: rest ->
            incr intents;
            Alcotest.(check (float 1e-9))
              (Printf.sprintf "link %d: verdict at intent time" link)
              i.J.t g.J.t;
            (match verdict with
            | J.Admitted | J.Damped | J.Deferred | J.Stale_data | J.Held -> ()
            | v ->
                Alcotest.fail
                  (Printf.sprintf "link %d: intent judged by %s" link
                     (J.verdict_name v)));
            walk rest
        | { J.kind = J.Intent _; _ } :: _ ->
            Alcotest.fail (Printf.sprintf "link %d: intent without verdict" link)
        | ({ J.kind = J.Fault { outcome = J.Committed; _ }; _ } as f) :: rest -> (
            match rest with
            | { J.kind = J.Commit _; t; _ } :: _ ->
                Alcotest.(check (float 1e-9))
                  (Printf.sprintf "link %d: commit at fault time" link)
                  f.J.t t;
                walk rest
            | _ ->
                Alcotest.fail
                  (Printf.sprintf "link %d: committed fault without commit" link))
        | _ :: rest -> walk rest
        | [] -> ()
      in
      walk stream)
    by_link;
  Alcotest.(check bool) "chains were exercised" true (!intents > 0)

let test_online_offline_slo_agree () =
  let report, records = Lazy.force run_and_records in
  let online =
    match report.Runner.slo with
    | Some s -> s
    | None -> Alcotest.fail "report carries no SLO summary"
  in
  let seg =
    match J.segments records with
    | [ seg ] -> seg
    | segs -> Alcotest.fail (Printf.sprintf "%d segments" (List.length segs))
  in
  match J.Slo.of_records online.J.Slo.config seg with
  | Error e -> Alcotest.fail e
  | Ok offline ->
      Alcotest.(check int) "met agree" online.J.Slo.met offline.J.Slo.met;
      Alcotest.(check int) "violated agree" online.J.Slo.violated
        offline.J.Slo.violated;
      Alcotest.(check int) "link count agree"
        (Array.length online.J.Slo.links)
        (Array.length offline.J.Slo.links);
      Array.iteri
        (fun i on ->
          let off = offline.J.Slo.links.(i) in
          let m1 = on.J.Slo.measure and m2 = off.J.Slo.measure in
          (* The offline path reads floats back through %.12g, so the
             agreement is to serialization precision, not bit-exact. *)
          Alcotest.(check (float 1e-6)) "availability" m1.J.Slo.availability_pct
            m2.J.Slo.availability_pct;
          Alcotest.(check (float 1e-6)) "class time" m1.J.Slo.class_time_pct
            m2.J.Slo.class_time_pct;
          Alcotest.(check (float 1e-6)) "flap rate" m1.J.Slo.flaps_per_day
            m2.J.Slo.flaps_per_day;
          Alcotest.(check (float 1e-6)) "quarantine" m1.J.Slo.quarantine_pct
            m2.J.Slo.quarantine_pct)
        online.J.Slo.links

let test_span_ids_follow_tracing () =
  (* With tracing off every record carries span 0; with tracing on,
     emissions made inside runner spans carry the enclosing span id. *)
  let _, records = Lazy.force run_and_records in
  List.iter
    (fun r -> Alcotest.(check int) "span 0 when tracing off" 0 r.J.span)
    records;
  let trace_was = Rwc_obs.Trace.enabled () in
  Rwc_obs.Trace.enable ();
  let path = Filename.temp_file "rwc_test_journal_span" ".jsonl" in
  let jnl = J.create ~path () in
  let _ =
    Fun.protect
      ~finally:(fun () ->
        if not trace_was then Rwc_obs.Trace.disable ();
        Rwc_obs.Trace.reset ())
      (fun () ->
        Runner.run ~config:(journal_config jnl) (Runner.Adaptive Runner.Efficient))
  in
  J.close jnl;
  let traced =
    match J.read_file path with Ok (r, _) -> r | Error e -> Alcotest.fail e
  in
  Sys.remove path;
  Alcotest.(check bool) "all spans positive when tracing" true
    (List.for_all (fun r -> r.J.span > 0) traced);
  Alcotest.(check bool) "more than one distinct span" true
    (List.length
       (List.sort_uniq compare (List.map (fun r -> r.J.span) traced))
    > 1)

let test_journal_does_not_perturb () =
  (* The armed journal observes the run; it must not change it. *)
  let plain =
    Runner.run ~config:(journal_config J.disarmed) (Runner.Adaptive Runner.Efficient)
  in
  let report, _ = Lazy.force run_and_records in
  Alcotest.(check bool) "reports identical up to the slo block" true
    (plain = { report with Runner.slo = None })

let suite =
  [
    Alcotest.test_case "record round trip" `Quick test_record_round_trip;
    Alcotest.test_case "record rejects malformed" `Quick
      test_record_of_json_rejects;
    Alcotest.test_case "read_file + segments" `Quick test_read_file_and_segments;
    Alcotest.test_case "disarmed is inert" `Quick test_disarmed_is_inert;
    Alcotest.test_case "slo grammar round trip" `Quick
      test_slo_grammar_round_trip;
    Alcotest.test_case "slo measures (hand-built)" `Quick
      test_slo_measures_hand_built;
    Alcotest.test_case "event ordering" `Slow test_event_ordering;
    Alcotest.test_case "chain reconstruction" `Slow test_chain_reconstruction;
    Alcotest.test_case "online/offline slo agree" `Slow
      test_online_offline_slo_agree;
    Alcotest.test_case "span ids follow tracing" `Slow
      test_span_ids_follow_tracing;
    Alcotest.test_case "journal does not perturb" `Slow
      test_journal_does_not_perturb;
  ]

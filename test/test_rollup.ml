open Rwc_telemetry

let test_rollup_basic () =
  let ws = Rollup.rollup [| 1.0; 3.0; 2.0; 10.0; 4.0 |] ~every:2 in
  Alcotest.(check int) "three windows" 3 (Array.length ws);
  Alcotest.(check (float 1e-9)) "w0 min" 1.0 ws.(0).Rollup.min;
  Alcotest.(check (float 1e-9)) "w0 mean" 2.0 ws.(0).Rollup.mean;
  Alcotest.(check (float 1e-9)) "w0 max" 3.0 ws.(0).Rollup.max;
  Alcotest.(check (float 1e-9)) "w1 min" 2.0 ws.(1).Rollup.min;
  (* Final partial window. *)
  Alcotest.(check (float 1e-9)) "w2 = last sample" 4.0 ws.(2).Rollup.mean

let test_rollup_identity () =
  let trace = [| 5.0; 6.0; 7.0 |] in
  let ws = Rollup.rollup trace ~every:1 in
  Alcotest.(check (array (float 1e-9))) "every=1 keeps samples" trace
    (Rollup.mins ws);
  Alcotest.(check (array (float 1e-9))) "min = mean = max" trace
    (Rollup.means ws)

let test_rollup_empty () =
  Alcotest.(check int) "empty" 0 (Array.length (Rollup.rollup [||] ~every:4))

let test_rollup_window_invariants () =
  let rng = Rwc_stats.Rng.create 21 in
  let trace = Array.init 1000 (fun _ -> Rwc_stats.Rng.gaussian rng ~mu:15.0 ~sigma:1.0) in
  Array.iter
    (fun w ->
      Alcotest.(check bool) "min <= mean <= max" true
        (w.Rollup.min <= w.Rollup.mean +. 1e-9
        && w.Rollup.mean <= w.Rollup.max +. 1e-9))
    (Rollup.rollup trace ~every:7)

let test_feasible_conservative () =
  (* Roll-up-based feasibility never exceeds raw-sample feasibility,
     across a spread of realistic links. *)
  List.iteri
    (fun i baseline ->
      let p = Snr_model.default_params ~baseline_db:baseline () in
      let trace, _ =
        Snr_model.generate (Rwc_stats.Rng.create (300 + i)) p ~years:0.5
      in
      let raw_hdr = Rwc_stats.Hdr.of_samples ~mass:0.95 trace in
      let raw = Rwc_optical.Modulation.feasible_gbps raw_hdr.Rwc_stats.Hdr.lo in
      List.iter
        (fun every ->
          let rolled = Rollup.feasible_gbps_conservative trace ~every in
          Alcotest.(check bool)
            (Printf.sprintf "baseline %.1f every %d: %d <= %d" baseline every
               rolled raw)
            true (rolled <= raw))
        [ 4; 24; 96 ])
    [ 11.0; 13.0; 15.0; 18.0 ]

let test_hourly_rollup_close_to_raw () =
  (* Hourly (4-sample) roll-ups barely change the statistic: archives
     can be 4x smaller at negligible cost. *)
  let p = Snr_model.default_params ~baseline_db:15.0 () in
  let trace, _ = Snr_model.generate (Rwc_stats.Rng.create 33) p ~years:1.0 in
  let raw_hdr = Rwc_stats.Hdr.of_samples ~mass:0.95 trace in
  let raw = Rwc_optical.Modulation.feasible_gbps raw_hdr.Rwc_stats.Hdr.lo in
  let rolled = Rollup.feasible_gbps_conservative trace ~every:4 in
  Alcotest.(check bool) "within one denomination" true (raw - rolled <= 25)

let suite =
  [
    Alcotest.test_case "rollup basic" `Quick test_rollup_basic;
    Alcotest.test_case "rollup identity" `Quick test_rollup_identity;
    Alcotest.test_case "rollup empty" `Quick test_rollup_empty;
    Alcotest.test_case "window invariants" `Quick test_rollup_window_invariants;
    Alcotest.test_case "feasibility conservative" `Quick test_feasible_conservative;
    Alcotest.test_case "hourly rollup close to raw" `Quick test_hourly_rollup_close_to_raw;
  ]

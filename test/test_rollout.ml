(* The staged-commit engine between Adapt's fleet-global commit half
   and BVT reconfiguration: plan grammar, the wave/bake/gate state
   machine, forced and health-driven rollbacks, journal-first mutating
   RPCs, checkpoint snapshots, and the cross-layer contracts — disarmed
   is free (a rollout-off run is byte-identical across pool widths,
   rollout block absent from the report), and any rollback or abort
   restores every enrolled link's modulation and guard state to the
   pre-rollout snapshot.  The qcheck property at the bottom drives
   random multi-wave rollouts, with random admission subsets and gate
   outcome sequences, against a model of the fleet's rates and a
   control guard. *)

module RO = Rwc_rollout
module G = Rwc_guard
module J = Rwc_journal
module Runner = Rwc_sim.Runner
module R = Rwc_recover

let ok_plan s =
  match RO.of_string s with
  | Ok p -> p
  | Error e -> Alcotest.failf "of_string %S: %s" s e

let err_plan s =
  match RO.of_string s with
  | Ok _ -> Alcotest.failf "of_string %S: expected an error" s
  | Error e -> e

let cfg_of s =
  match ok_plan s with
  | Some c -> c
  | None -> Alcotest.failf "plan %S parsed to none" s

let with_temp_dir f =
  let dir = Filename.temp_file "rwc_test_rollout" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      try Sys.rmdir path with Sys_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

let slurp p = In_channel.with_open_bin p In_channel.input_all

let zero_stats =
  {
    RO.rollouts_started = 0;
    waves_committed = 0;
    gates_passed = 0;
    gates_failed = 0;
    links_admitted = 0;
    links_deferred = 0;
    links_rolled_back = 0;
  }

(* A small engine over a disarmed journal and guard unless a test needs
   them armed. *)
let engine ?(plan = RO.default) ?(n = 8) ?(journal = J.disarmed)
    ?(guard = G.disarmed) () =
  RO.create plan ~n_links:n
    ~group_of:(fun i -> i mod 3)
    ~seed:7 ~horizon_s:604_800.0 ~journal ~guard

(* --- plan grammar -------------------------------------------------------- *)

let test_plan_parse () =
  Alcotest.(check bool) "none is none" true (RO.is_none (ok_plan "none"));
  Alcotest.(check bool) "empty is none" true (RO.is_none (ok_plan ""));
  Alcotest.(check bool) "default knobs" true
    (cfg_of "default" = RO.default_config);
  let c = cfg_of "wave=2,bake=1800,fail-gate=1,freeze=100..200,freeze=3e3..4e3" in
  Alcotest.(check int) "wave" 2 c.RO.wave_links;
  Alcotest.(check (float 1e-9)) "bake" 1800.0 c.RO.bake_s;
  Alcotest.(check int) "fail-gate" 1 c.RO.fail_gate;
  Alcotest.(check int) "freeze windows" 2 (List.length c.RO.freezes);
  Alcotest.(check int) "untouched knob keeps default"
    RO.default_config.RO.group_budget c.RO.group_budget

let test_plan_round_trip () =
  Alcotest.(check string) "none" "none" (RO.to_string RO.none);
  Alcotest.(check string) "default" "default" (RO.to_string RO.default);
  List.iter
    (fun spec ->
      Alcotest.(check bool) spec true
        (ok_plan (RO.to_string (ok_plan spec)) = ok_plan spec))
    [
      "wave=2,bake=1800,fail-gate=1";
      "group-budget=1,gate-flaps=0,gate-quar=3";
      "freeze=100..200,maint=5,gate-slo=2";
      "hold=60,settle=120";
    ]

let test_plan_errors () =
  ignore (err_plan "bogus=1");
  ignore (err_plan "wave");
  ignore (err_plan "wave=abc");
  ignore (err_plan "wave=0");
  ignore (err_plan "group-budget=0");
  ignore (err_plan "freeze=5");
  ignore (err_plan "freeze=10..abc")

(* --- disarmed is free ---------------------------------------------------- *)

let test_disarmed_is_free () =
  let t = engine ~plan:RO.none () in
  Alcotest.(check bool) "not armed" false (RO.armed t);
  Alcotest.(check bool) "admit passes" true
    (RO.admit t ~link:0 ~now:0.0 ~from_gbps:100 ~to_gbps:200 = RO.Admit);
  RO.note_flap t ~now:0.0;
  RO.note_quarantine t ~now:0.0;
  Alcotest.(check bool) "sweep empty" true (RO.sweep t ~now:900.0 = []);
  Alcotest.(check bool) "no override" true (RO.take_override t ~link:0 = None);
  Alcotest.(check bool) "stats all zero" true (RO.stats t = zero_stats);
  Alcotest.(check bool) "pristine snapshot is None" true
    (RO.snapshot t = None)

(* --- wave / bake / gate state machine ------------------------------------ *)

let test_wave_gate_pass_completes () =
  let t = engine ~plan:(ok_plan "wave=2,group-budget=2,bake=900,settle=900") () in
  Alcotest.(check bool) "link 0 admitted" true
    (RO.admit t ~link:0 ~now:0.0 ~from_gbps:100 ~to_gbps:150 = RO.Admit);
  Alcotest.(check bool) "link 1 admitted" true
    (RO.admit t ~link:1 ~now:0.0 ~from_gbps:125 ~to_gbps:150 = RO.Admit);
  Alcotest.(check bool) "wave full: link 2 deferred" true
    (RO.admit t ~link:2 ~now:0.0 ~from_gbps:100 ~to_gbps:150 = RO.Defer);
  Alcotest.(check bool) "wave close returns no directives" true
    (RO.sweep t ~now:100.0 = []);
  Alcotest.(check int) "one wave committed" 1 (RO.stats t).RO.waves_committed;
  Alcotest.(check bool) "baking: admissions deferred" true
    (RO.admit t ~link:2 ~now:200.0 ~from_gbps:100 ~to_gbps:150 = RO.Defer);
  Alcotest.(check bool) "gate passes clean" true (RO.sweep t ~now:1100.0 = []);
  Alcotest.(check int) "gate counted" 1 (RO.stats t).RO.gates_passed;
  (* Settled: the next admission opens wave 2 of the same rollout. *)
  Alcotest.(check bool) "wave 2 opens" true
    (RO.admit t ~link:2 ~now:1200.0 ~from_gbps:100 ~to_gbps:150 = RO.Admit);
  Alcotest.(check bool) "wave 2 closes" true (RO.sweep t ~now:1300.0 = []);
  Alcotest.(check bool) "gate 2 passes" true (RO.sweep t ~now:2300.0 = []);
  (* A quiet settle window completes the rollout. *)
  Alcotest.(check bool) "settle expiry" true (RO.sweep t ~now:3300.0 = []);
  let st = RO.stats t in
  Alcotest.(check int) "one rollout" 1 st.RO.rollouts_started;
  Alcotest.(check int) "two waves" 2 st.RO.waves_committed;
  Alcotest.(check int) "three admissions" 3 st.RO.links_admitted;
  Alcotest.(check int) "nothing rolled back" 0 st.RO.links_rolled_back

let test_flap_gate_fails_and_rolls_back () =
  let guard = G.create G.default ~n_links:8 ~group_of:(fun i -> i mod 3) in
  let t =
    engine ~guard
      ~plan:(ok_plan "wave=4,group-budget=4,gate-flaps=0,bake=900,hold=3600")
      ()
  in
  ignore (RO.admit t ~link:0 ~now:0.0 ~from_gbps:100 ~to_gbps:150);
  ignore (RO.admit t ~link:1 ~now:0.0 ~from_gbps:150 ~to_gbps:200);
  (* The runner records the committed upgrades against the guard; a
     rollback must wind that state back too. *)
  List.iter
    (fun link ->
      G.record_commit guard ~link ~now:0.0 G.Up_shift;
      G.release guard ~link)
    [ 0; 1 ];
  Alcotest.(check bool) "wave closes" true (RO.sweep t ~now:100.0 = []);
  RO.note_flap t ~now:500.0;
  let directives = RO.sweep t ~now:1100.0 in
  Alcotest.(check bool) "both links revert to pre-rollout rates" true
    (directives = [ (0, 100); (1, 150) ]);
  Alcotest.(check int) "gate failure counted" 1 (RO.stats t).RO.gates_failed;
  List.iter
    (fun (link, gbps) -> RO.note_rolled_back t ~link ~now:1100.0 ~gbps)
    directives;
  Alcotest.(check int) "rollbacks counted" 2 (RO.stats t).RO.links_rolled_back;
  List.iter
    (fun link ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "link %d guard penalty restored" link)
        0.0
        (G.penalty guard ~link ~now:1100.0))
    [ 0; 1 ];
  (* Cooldown hold, then a fresh rollout. *)
  Alcotest.(check bool) "held: admission deferred" true
    (RO.admit t ~link:2 ~now:1200.0 ~from_gbps:100 ~to_gbps:150 = RO.Defer);
  Alcotest.(check bool) "hold expires" true (RO.sweep t ~now:4701.0 = []);
  Alcotest.(check bool) "idle again: admission starts rollout 2" true
    (RO.admit t ~link:2 ~now:4800.0 ~from_gbps:100 ~to_gbps:150 = RO.Admit);
  Alcotest.(check int) "second rollout" 2 (RO.stats t).RO.rollouts_started

let test_freeze_window_defers () =
  let t = engine ~plan:(ok_plan "freeze=1000..2000") () in
  Alcotest.(check bool) "inside freeze" true
    (RO.admit t ~link:0 ~now:1500.0 ~from_gbps:100 ~to_gbps:150 = RO.Defer);
  Alcotest.(check bool) "after freeze" true
    (RO.admit t ~link:0 ~now:2500.0 ~from_gbps:100 ~to_gbps:150 = RO.Admit);
  Alcotest.(check int) "deferral counted" 1 (RO.stats t).RO.links_deferred

let test_maintenance_calendar_deterministic () =
  (* The calendar is recomputed from the seed, never stored: two
     engines with the same seed must make identical admission
     decisions. *)
  let decisions () =
    let t = engine ~plan:(ok_plan "maint=25,wave=64,group-budget=64") ~n:16 () in
    List.init 160 (fun k ->
        let link = k mod 16 and now = float_of_int k *. 3600.0 in
        RO.admit t ~link ~now ~from_gbps:100 ~to_gbps:150 = RO.Admit)
  in
  Alcotest.(check bool) "same seed, same calendar" true
    (decisions () = decisions ())

(* --- journal-first mutating RPCs ----------------------------------------- *)

let rollout_events records =
  List.filter_map
    (fun (r : J.record) ->
      match r.J.kind with
      | J.Rollout { revent; _ } -> Some (J.rollout_event_name revent)
      | _ -> None)
    records

let test_rpc_lifecycle () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "rpc.jsonl" in
      let jnl = J.create ~path () in
      let t = engine ~plan:RO.none ~journal:jnl () in
      (match RO.request_approve t ~now:0.0 with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "approve without proposal must fail");
      let rid =
        match RO.request_propose t ~now:10.0 RO.default_config with
        | Ok rid -> rid
        | Error e -> Alcotest.failf "propose: %s" e
      in
      Alcotest.(check int) "first rollout id" 1 rid;
      (* Journal-first: the intent is on disk, the effect waits for the
         sweep boundary. *)
      Alcotest.(check bool) "not armed before sweep" false (RO.armed t);
      Alcotest.(check bool) "propose applies at sweep" true
        (RO.sweep t ~now:900.0 = []);
      Alcotest.(check bool) "pending approval" true (RO.proposed t <> None);
      Alcotest.(check bool) "still not armed" false (RO.armed t);
      (match RO.request_approve t ~now:1000.0 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "approve: %s" e);
      Alcotest.(check bool) "approve applies at sweep" true
        (RO.sweep t ~now:1800.0 = []);
      Alcotest.(check bool) "armed after approval" true (RO.armed t);
      ignore (RO.admit t ~link:0 ~now:2000.0 ~from_gbps:100 ~to_gbps:150);
      (match RO.request_pause t ~now:2100.0 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "pause: %s" e);
      (match RO.request_abort t ~now:2200.0 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "abort: %s" e);
      (* One sweep applies the queue in order: pause, then abort rolls
         the enrolled link back. *)
      let directives = RO.sweep t ~now:2700.0 in
      Alcotest.(check bool) "abort reverts the enrolled link" true
        (directives = [ (0, 100) ]);
      J.close jnl;
      match J.read_file path with
      | Error e -> Alcotest.failf "read_file: %s" e
      | Ok (records, _) ->
          (* The abort lands while the wave is still open, so no
             wave-committed event is ever written. *)
          Alcotest.(check (list string)) "journal chain"
            [ "proposed"; "approved"; "started"; "admitted"; "paused";
              "aborted" ]
            (rollout_events records))

let test_rpc_requires_armed_journal () =
  let t = engine ~plan:RO.default () in
  List.iter
    (fun (name, r) ->
      match r with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "%s on a disarmed journal must fail" name)
    [
      ("approve", RO.request_approve t ~now:0.0);
      ("pause", RO.request_pause t ~now:0.0);
      ("abort", RO.request_abort t ~now:0.0);
    ];
  match RO.request_propose t ~now:0.0 RO.default_config with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "propose on a disarmed journal must fail"

(* --- checkpoint snapshot / restore --------------------------------------- *)

let test_snapshot_restore_round_trip () =
  let plan = ok_plan "wave=2,group-budget=2,bake=900,fail-gate=1" in
  let drive t =
    ignore (RO.admit t ~link:0 ~now:0.0 ~from_gbps:100 ~to_gbps:150);
    ignore (RO.admit t ~link:1 ~now:0.0 ~from_gbps:125 ~to_gbps:150);
    ignore (RO.sweep t ~now:100.0);
    RO.note_flap t ~now:200.0;
    RO.set_override t ~link:1 ~gbps:125
  in
  let a = engine ~plan () in
  drive a;
  let snap =
    match RO.snapshot a with
    | Some s -> s
    | None -> Alcotest.fail "mid-bake engine must snapshot"
  in
  let b = engine ~plan () in
  RO.restore b snap;
  Alcotest.(check bool) "restored snapshot identical" true
    (RO.snapshot b = Some snap);
  (* Both twins must make the same forced-gate decision with the same
     directives. *)
  let da = RO.sweep a ~now:1100.0 and db = RO.sweep b ~now:1100.0 in
  Alcotest.(check bool) "twin directives" true (da = db && da <> []);
  Alcotest.(check bool) "twin overrides" true
    (RO.take_override a ~link:1 = RO.take_override b ~link:1);
  Alcotest.(check bool) "twin stats" true (RO.stats a = RO.stats b)

(* --- runner integration: disarmed-off identity, armed determinism -------- *)

let policy = Runner.Adaptive Runner.Efficient

let fault_plan s =
  match Rwc_fault.of_string s with Ok p -> p | Error e -> failwith e

(* One journaled faulted run; returns the report, its renderings and
   the journal bytes. *)
let run_once dir ~name ~rollout ~domains =
  let jpath = Filename.concat dir (name ^ ".jsonl") in
  let jnl = J.create ~path:jpath ~slo:J.Slo.default () in
  let config =
    {
      Runner.default_config with
      Runner.days = 0.5;
      seed = 11;
      faults = fault_plan "default";
      rollout;
      journal = jnl;
      domains;
    }
  in
  let r = Runner.run ~config policy in
  J.close jnl;
  ( r,
    Format.asprintf "%a" Runner.pp_report r,
    Rwc_obs.Json.to_string (Runner.json_of_report r),
    slurp jpath )

let test_off_run_identical_across_domains () =
  with_temp_dir (fun dir ->
      let r1, pp1, js1, jn1 =
        run_once dir ~name:"off-d1" ~rollout:RO.none ~domains:1
      in
      let _, pp4, js4, jn4 =
        run_once dir ~name:"off-d4" ~rollout:RO.none ~domains:4
      in
      Alcotest.(check string) "report rendering" pp1 pp4;
      Alcotest.(check string) "report JSON" js1 js4;
      Alcotest.(check string) "journal bytes" jn1 jn4;
      (* Rollout-off: the optional block must be absent, from both the
         report record and its JSON rendering. *)
      Alcotest.(check bool) "no rollout stats" true
        (r1.Runner.rollout_stats = None);
      Alcotest.(check bool) "no rollout JSON field" true
        (Rwc_obs.Json.member "rollout" (Runner.json_of_report r1) = None))

let test_armed_run_identical_across_domains () =
  with_temp_dir (fun dir ->
      let plan = ok_plan "wave=2,group-budget=2,bake=7200" in
      let r1, pp1, js1, jn1 =
        run_once dir ~name:"on-d1" ~rollout:plan ~domains:1
      in
      let _, pp4, js4, jn4 =
        run_once dir ~name:"on-d4" ~rollout:plan ~domains:4
      in
      Alcotest.(check string) "report rendering" pp1 pp4;
      Alcotest.(check string) "report JSON" js1 js4;
      Alcotest.(check string) "journal bytes" jn1 jn4;
      match r1.Runner.rollout_stats with
      | None -> Alcotest.fail "armed run must report rollout stats"
      | Some st ->
          Alcotest.(check bool) "links staged" true (st.RO.links_admitted > 0);
          Alcotest.(check bool) "waves committed" true
            (st.RO.waves_committed > 0))

let test_forced_gate_rolls_back_in_runner () =
  with_temp_dir (fun dir ->
      let r, _, _, journal_bytes =
        run_once dir ~name:"forced"
          ~rollout:(ok_plan "wave=2,group-budget=2,bake=1800,fail-gate=1")
          ~domains:1
      in
      (match r.Runner.rollout_stats with
      | None -> Alcotest.fail "armed run must report rollout stats"
      | Some st ->
          Alcotest.(check int) "forced gate failed" 1 st.RO.gates_failed;
          Alcotest.(check bool) "links rolled back" true
            (st.RO.links_rolled_back > 0));
      (* The journal carries the whole chain for rwc explain. *)
      let jpath = Filename.concat dir "forced.jsonl" in
      ignore journal_bytes;
      match J.read_file jpath with
      | Error e -> Alcotest.failf "read_file: %s" e
      | Ok (records, _) ->
          let events = rollout_events records in
          List.iter
            (fun ev ->
              Alcotest.(check bool) (ev ^ " journaled") true
                (List.mem ev events))
            [ "started"; "admitted"; "wave-committed"; "gate-failed";
              "rolled-back" ])

(* Kill-mid-wave + resume: an armed rollout must survive the crash
   oracle — the recovered run's report and journal byte-identical to
   the uninterrupted twin, gate verdicts and rollbacks included. *)
let test_armed_crash_resume_golden () =
  with_temp_dir (fun dir ->
      let plan = ok_plan "wave=2,group-budget=2,bake=1800,fail-gate=2" in
      (* The same plan both sides: Runner.run ignores crash rules, so
         the reference shares the non-crash injector stream exactly. *)
      let faults = fault_plan "default,crash=0.08,seed=99" in
      let config journal =
        {
          Runner.default_config with
          Runner.days = 0.75;
          seed = 11;
          faults;
          rollout = plan;
          journal;
        }
      in
      let ref_journal = Filename.concat dir "ref.jsonl" in
      let reference =
        let jnl = J.create ~path:ref_journal () in
        let r = Runner.run ~config:(config jnl) policy in
        J.close jnl;
        r
      in
      let crash_journal = Filename.concat dir "crash.jsonl" in
      let ckdir = Filename.concat dir "ck" in
      let ctx, _ =
        match
          R.create ~dir:ckdir ~every:16 ~journal_path:crash_journal ~faults
            ~resume:false ()
        with
        | Ok pair -> pair
        | Error e -> Alcotest.failf "create: %s" e
      in
      let jnl = J.create ~path:crash_journal () in
      let outcomes =
        Runner.run_recoverable ~config:(config jnl) ~ctx ~resume_from:None
          ~policies:[ policy ] ()
      in
      Alcotest.(check bool) "the crash oracle actually fired" true
        (ctx.R.restarts > 0);
      (match outcomes with
      | [ Runner.Ran r ] ->
          Alcotest.(check string) "report byte-identical"
            (Format.asprintf "%a" Runner.pp_report reference)
            (Format.asprintf "%a" Runner.pp_report r);
          Alcotest.(check bool) "rollout stats identical" true
            (r.Runner.rollout_stats = reference.Runner.rollout_stats)
      | _ -> Alcotest.fail "expected one Ran outcome");
      Alcotest.(check string) "journal byte-identical" (slurp ref_journal)
        (slurp crash_journal))

(* --- property: rollback restores the pre-rollout snapshot ---------------- *)

(* Drive a random multi-wave rollout — random admission subsets, a
   random number of passed gates, ending in either a forced gate
   failure or an RPC abort — against a model: an array of link rates,
   a table of pre-rollout rates, and a control guard that never sees
   the rollout-era commits.  After the rollback directives are
   applied, every link the rollout ever touched must be back at its
   pre-rollout rate, and its guard state must match the control's. *)
let arb_rollout =
  QCheck.make
    ~print:(fun (n, wave, gb, passes, salt, abort) ->
      Printf.sprintf "links=%d wave=%d group=%d passes=%d salt=%d abort=%b" n
        wave gb passes salt abort)
    QCheck.Gen.(
      let* n = int_range 2 12 in
      let* wave = int_range 1 4 in
      let* gb = int_range 1 3 in
      let* passes = int_range 0 3 in
      let* salt = int_range 0 1_000_000 in
      let* abort = bool in
      return (n, wave, gb, passes, salt, abort))

let prop_rollback_restores_pre_state =
  QCheck.Test.make
    ~name:"rollout: rollback/abort restores pre-rollout rates and guard"
    ~count:40 arb_rollout (fun (n, wave, gb, passes, salt, abort) ->
      with_temp_dir (fun dir ->
          let group_of i = i mod 3 in
          let guard = G.create G.default ~n_links:n ~group_of in
          let control = G.create G.default ~n_links:n ~group_of in
          (* Pre-rollout guard history both twins share. *)
          List.iter
            (fun g ->
              G.record_commit g ~link:0 ~now:0.0 G.Up_shift;
              G.release g ~link:0)
            [ guard; control ];
          let jnl =
            if abort then J.create ~path:(Filename.concat dir "j.jsonl") ()
            else J.disarmed
          in
          let cfg =
            {
              RO.default_config with
              RO.wave_links = wave;
              group_budget = gb;
              bake_s = 900.0;
              gate_flaps = 1_000_000;
              gate_quars = 1_000_000;
              settle_s = 1e9;
              (* Forced failure at the gate after [passes] clean ones;
                 irrelevant when the run ends in an abort instead. *)
              fail_gate = (if abort then 0 else passes + 1);
            }
          in
          let t =
            RO.create (Some cfg) ~n_links:n ~group_of ~seed:7
              ~horizon_s:604_800.0 ~journal:jnl ~guard
          in
          let rates = Array.make n 100 in
          let pre = Hashtbl.create 8 in
          let now = ref 0.0 in
          let directives = ref [] in
          let sweep () =
            directives := !directives @ RO.sweep t ~now:!now
          in
          let admit_round w =
            for link = 0 to n - 1 do
              if (link * 7) + (w * 13) + salt mod 97 mod 3 <> 1 then
                let from_gbps = rates.(link) in
                match
                  RO.admit t ~link ~now:!now ~from_gbps ~to_gbps:(from_gbps + 50)
                with
                | RO.Admit ->
                    if not (Hashtbl.mem pre link) then
                      Hashtbl.replace pre link from_gbps;
                    rates.(link) <- from_gbps + 50;
                    G.record_commit guard ~link ~now:!now G.Up_shift;
                    G.release guard ~link
                | RO.Defer -> ()
            done
          in
          for w = 1 to passes + 1 do
            admit_round w;
            now := !now +. 100.0;
            sweep ();
            (* harmless health noise during the bake *)
            RO.note_flap t ~now:!now;
            now := !now +. cfg.RO.bake_s +. 1.0;
            if w <= passes then sweep ()
          done;
          if abort then begin
            (match RO.request_abort t ~now:!now with
            | Ok () -> ()
            | Error e -> QCheck.Test.fail_reportf "abort: %s" e);
            sweep ()
          end
          else sweep ();
          J.close jnl;
          let enrolled =
            Hashtbl.fold (fun l p acc -> (l, p) :: acc) pre []
            |> List.sort compare
          in
          let got = List.sort compare !directives in
          (* Apply the physical reverts the way the runner would. *)
          List.iter (fun (l, p) -> rates.(l) <- p) got;
          got = enrolled
          && Array.for_all (( = ) 100) rates
          && List.for_all
               (fun (l, _) ->
                 G.penalty guard ~link:l ~now:!now
                 = G.penalty control ~link:l ~now:!now
                 && G.quarantined guard ~link:l ~now:!now
                    = G.quarantined control ~link:l ~now:!now)
               enrolled))

let suite =
  [
    Alcotest.test_case "plan parse" `Quick test_plan_parse;
    Alcotest.test_case "plan round trip" `Quick test_plan_round_trip;
    Alcotest.test_case "plan errors" `Quick test_plan_errors;
    Alcotest.test_case "disarmed is free" `Quick test_disarmed_is_free;
    Alcotest.test_case "wave/gate/settle lifecycle" `Quick
      test_wave_gate_pass_completes;
    Alcotest.test_case "flap gate fails and rolls back" `Quick
      test_flap_gate_fails_and_rolls_back;
    Alcotest.test_case "freeze window defers" `Quick test_freeze_window_defers;
    Alcotest.test_case "maintenance calendar deterministic" `Quick
      test_maintenance_calendar_deterministic;
    Alcotest.test_case "journal-first RPC lifecycle" `Quick test_rpc_lifecycle;
    Alcotest.test_case "RPCs need an armed journal" `Quick
      test_rpc_requires_armed_journal;
    Alcotest.test_case "snapshot/restore round trip" `Quick
      test_snapshot_restore_round_trip;
    Alcotest.test_case "rollout-off identical across domains" `Slow
      test_off_run_identical_across_domains;
    Alcotest.test_case "armed run identical across domains" `Slow
      test_armed_run_identical_across_domains;
    Alcotest.test_case "forced gate rolls back in the runner" `Slow
      test_forced_gate_rolls_back_in_runner;
    Alcotest.test_case "armed crash+resume golden" `Slow
      test_armed_crash_resume_golden;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_rollback_restores_pre_state ]

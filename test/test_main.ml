let () =
  Alcotest.run "rwc"
    [
      ("rng", Test_rng.suite);
      ("stats", Test_stats.suite);
      ("streaming", Test_streaming.suite);
      ("flow", Test_flow.suite);
      ("disjoint", Test_disjoint.suite);
      ("optical", Test_optical.suite);
      ("qfactor", Test_qfactor.suite);
      ("telemetry", Test_telemetry.suite);
      ("detect", Test_detect.suite);
      ("rollup", Test_rollup.suite);
      ("topology", Test_topology.suite);
      ("parser", Test_parser.suite);
      ("core", Test_core.suite);
      ("fault", Test_fault.suite);
      ("guard", Test_guard.suite);
      ("sim", Test_sim.suite);
      ("extensions", Test_extensions.suite);
      ("properties", Test_properties.suite);
      ("protect", Test_protect.suite);
      ("swan", Test_swan.suite);
      ("fibbing", Test_fibbing.suite);
      ("fairness", Test_fairness.suite);
      ("infra", Test_infra.suite);
      ("obs", Test_obs.suite);
      ("perf", Test_perf.suite);
      ("journal", Test_journal.suite);
      ("recover", Test_recover.suite);
      ("storm", Test_storm.suite);
      ("serve", Test_serve.suite);
      ("figures", Test_figures.suite);
      ("par", Test_par.suite);
      ("rollout", Test_rollout.suite);
    ]

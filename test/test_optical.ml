open Rwc_optical

(* --- units ---------------------------------------------------------- *)

let test_db_roundtrip () =
  List.iter
    (fun x ->
      Alcotest.(check (float 1e-9)) "roundtrip" x
        (Units.db_of_linear (Units.linear_of_db x)))
    [ -20.0; -3.0; 0.0; 6.5; 14.5; 30.0 ]

let test_db_known_values () =
  Alcotest.(check (float 1e-9)) "10x = 10 dB" 10.0 (Units.db_of_linear 10.0);
  Alcotest.(check (float 0.01)) "2x ~ 3 dB" 3.01 (Units.db_of_linear 2.0);
  Alcotest.(check (float 1e-9)) "unit = 0 dB" 0.0 (Units.db_of_linear 1.0)

let test_power_addition () =
  (* Two equal powers sum to +3 dB. *)
  Alcotest.(check (float 0.01)) "0+0 dBm = 3 dBm" 3.01
    (Units.add_powers_dbm 0.0 0.0);
  (* Adding a much weaker signal barely moves the total. *)
  let s = Units.add_powers_dbm 0.0 (-30.0) in
  Alcotest.(check bool) "tiny addition" true (s > 0.0 && s < 0.01)

(* --- modulation ------------------------------------------------------ *)

let test_modulation_monotone () =
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "capacity increases" true
          (b.Modulation.gbps > a.Modulation.gbps);
        Alcotest.(check bool) "threshold increases" true
          (b.Modulation.min_snr_db > a.Modulation.min_snr_db);
        check rest
    | _ -> ()
  in
  check Modulation.all

let test_modulation_paper_thresholds () =
  (* The two thresholds stated in the paper. *)
  (match Modulation.of_gbps 100 with
  | Some m -> Alcotest.(check (float 1e-9)) "100G at 6.5" 6.5 m.Modulation.min_snr_db
  | None -> Alcotest.fail "100G missing");
  match Modulation.of_gbps 50 with
  | Some m -> Alcotest.(check (float 1e-9)) "50G at 3.0" 3.0 m.Modulation.min_snr_db
  | None -> Alcotest.fail "50G missing"

let test_best_for_snr () =
  Alcotest.(check int) "very high snr" 200 (Modulation.feasible_gbps 20.0);
  Alcotest.(check int) "at 200 threshold" 200 (Modulation.feasible_gbps 12.5);
  Alcotest.(check int) "just below 200" 175 (Modulation.feasible_gbps 12.49);
  Alcotest.(check int) "paper: 3 dB drives 50G" 50 (Modulation.feasible_gbps 3.0);
  Alcotest.(check int) "loss of light" 0 (Modulation.feasible_gbps 1.0);
  Alcotest.(check int) "at 100" 100 (Modulation.feasible_gbps 6.5)

let test_scheme_mapping () =
  (* Figure 5's mapping: 100 -> QPSK, 150 -> 8QAM, 200 -> 16QAM. *)
  Alcotest.(check bool) "100=QPSK" true (Modulation.scheme_of 100 = Some Modulation.Qpsk);
  Alcotest.(check bool) "150=8QAM" true (Modulation.scheme_of 150 = Some Modulation.Qam8);
  Alcotest.(check bool) "200=16QAM" true (Modulation.scheme_of 200 = Some Modulation.Qam16);
  Alcotest.(check bool) "unknown" true (Modulation.scheme_of 99 = None)

let test_bits_per_symbol () =
  Alcotest.(check int) "qpsk" 2 (Modulation.bits_per_symbol Modulation.Qpsk);
  Alcotest.(check int) "8qam" 3 (Modulation.bits_per_symbol Modulation.Qam8);
  Alcotest.(check int) "16qam" 4 (Modulation.bits_per_symbol Modulation.Qam16)

(* --- fiber ----------------------------------------------------------- *)

let test_single_span_budget () =
  (* 80 km, 0.22 dB/km, NF 5, 0 dBm launch: OSNR = 58 - 17.6 - 5. *)
  let line =
    { Fiber.spans = [ Fiber.default_span 80.0 ]; launch_power_dbm = 0.0 }
  in
  Alcotest.(check (float 1e-6)) "link budget" 35.4 (Fiber.osnr_db line)

let test_spans_halve_osnr () =
  (* Doubling identical spans costs 10*log10(2) ~ 3 dB. *)
  let one =
    { Fiber.spans = [ Fiber.default_span 80.0 ]; launch_power_dbm = 0.0 }
  in
  let two =
    {
      Fiber.spans = [ Fiber.default_span 80.0; Fiber.default_span 80.0 ];
      launch_power_dbm = 0.0;
    }
  in
  Alcotest.(check (float 0.02)) "3 dB per doubling" 3.01
    (Fiber.osnr_db one -. Fiber.osnr_db two)

let test_longer_route_lower_osnr () =
  let short = Fiber.line_of_route_km 400.0 in
  let long = Fiber.line_of_route_km 3200.0 in
  Alcotest.(check bool) "monotone in distance" true
    (Fiber.osnr_db short > Fiber.osnr_db long)

let test_launch_power_shifts_osnr () =
  let base = Fiber.line_of_route_km 800.0 in
  let hot = { base with Fiber.launch_power_dbm = 3.0 } in
  Alcotest.(check (float 1e-6)) "dB-for-dB" 3.0
    (Fiber.osnr_db hot -. Fiber.osnr_db base)

let test_snr_margin () =
  let line = Fiber.line_of_route_km 800.0 in
  match Fiber.snr_margin_db line ~gbps:100 with
  | None -> Alcotest.fail "known denomination"
  | Some m ->
      Alcotest.(check (float 1e-6)) "margin = osnr - threshold"
        (Fiber.osnr_db line -. 6.5) m

(* --- constellation ---------------------------------------------------- *)

let test_constellations_unit_energy () =
  List.iter
    (fun scheme ->
      let pts = Constellation.ideal_points scheme in
      let e =
        Array.fold_left
          (fun acc p ->
            acc
            +. (p.Constellation.i *. p.Constellation.i)
            +. (p.Constellation.q *. p.Constellation.q))
          0.0 pts
        /. float_of_int (Array.length pts)
      in
      Alcotest.(check (float 1e-9)) "unit average energy" 1.0 e)
    [ Modulation.Qpsk; Modulation.Qam8; Modulation.Qam16 ]

let test_constellation_sizes () =
  Alcotest.(check int) "qpsk 4" 4
    (Array.length (Constellation.ideal_points Modulation.Qpsk));
  Alcotest.(check int) "8qam 8" 8
    (Array.length (Constellation.ideal_points Modulation.Qam8));
  Alcotest.(check int) "16qam 16" 16
    (Array.length (Constellation.ideal_points Modulation.Qam16))

let test_erfc_reference_values () =
  (* Abramowitz-Stegun approximation, |error| < 1.5e-7. *)
  Alcotest.(check (float 1e-6)) "erfc 0" 1.0 (Constellation.erfc 0.0);
  Alcotest.(check (float 1e-6)) "erfc 1" 0.1572992 (Constellation.erfc 1.0);
  Alcotest.(check (float 1e-6)) "erfc 2" 0.0046777 (Constellation.erfc 2.0);
  Alcotest.(check (float 1e-6)) "erfc -1" (2.0 -. 0.1572992) (Constellation.erfc (-1.0))

let test_high_snr_error_free () =
  let rng = Rwc_stats.Rng.create 11 in
  let run = Constellation.simulate rng Modulation.Qam16 ~snr_db:30.0 ~symbols:5000 in
  Alcotest.(check (float 1e-9)) "no symbol errors" 0.0 run.Constellation.symbol_error_rate;
  Alcotest.(check bool) "small evm" true (run.Constellation.evm_percent < 5.0)

let test_snr_estimate_matches () =
  let rng = Rwc_stats.Rng.create 12 in
  let run = Constellation.simulate rng Modulation.Qpsk ~snr_db:12.0 ~symbols:50_000 in
  Alcotest.(check (float 0.3)) "re-estimated snr" 12.0 run.Constellation.snr_estimate_db

let test_ser_matches_theory () =
  let rng = Rwc_stats.Rng.create 13 in
  List.iter
    (fun (scheme, snr_db) ->
      let run = Constellation.simulate rng scheme ~snr_db ~symbols:200_000 in
      let theory = Constellation.theoretical_ser scheme ~snr_db in
      (* Union bound is approximate; allow 2x. *)
      let ratio = run.Constellation.symbol_error_rate /. theory in
      if run.Constellation.symbol_error_rate > 1e-4 then
        Alcotest.(check bool)
          (Printf.sprintf "ser within 2x of theory (%f vs %f)"
             run.Constellation.symbol_error_rate theory)
          true
          (ratio > 0.4 && ratio < 2.0))
    [ (Modulation.Qpsk, 8.0); (Modulation.Qam8, 12.0); (Modulation.Qam16, 15.0) ]

let test_lower_snr_more_errors () =
  let rng = Rwc_stats.Rng.create 14 in
  let noisy = Constellation.simulate rng Modulation.Qam16 ~snr_db:10.0 ~symbols:20_000 in
  let clean = Constellation.simulate rng Modulation.Qam16 ~snr_db:18.0 ~symbols:20_000 in
  Alcotest.(check bool) "monotone ser" true
    (noisy.Constellation.symbol_error_rate > clean.Constellation.symbol_error_rate);
  Alcotest.(check bool) "monotone evm" true
    (noisy.Constellation.evm_percent > clean.Constellation.evm_percent)

let test_render_ascii () =
  let rng = Rwc_stats.Rng.create 15 in
  let run = Constellation.simulate rng Modulation.Qpsk ~snr_db:15.0 ~symbols:200 in
  let s = Constellation.render_ascii run in
  Alcotest.(check bool) "mentions scheme" true
    (String.length s > 0
    && String.sub s 0 4 = "QPSK");
  Alcotest.(check bool) "has ideal markers" true (String.contains s 'O')

(* --- mdio ------------------------------------------------------------- *)

let test_mdio_initial_state () =
  let m = Mdio.create () in
  Alcotest.(check bool) "laser on" true (Mdio.laser_enabled m);
  Alcotest.(check bool) "locked" true (Mdio.locked m);
  Alcotest.(check int) "qpsk staged" 0 (Mdio.staged_modulation m)

let test_mdio_read_write () =
  let m = Mdio.create () in
  Mdio.write m Mdio.reg_modulation 2;
  Alcotest.(check int) "wrote" 2 (Mdio.read m Mdio.reg_modulation)

let test_mdio_unmapped () =
  let m = Mdio.create () in
  Alcotest.check_raises "unmapped read"
    (Invalid_argument "Mdio: unmapped register 0x0001") (fun () ->
      ignore (Mdio.read m 1))

let test_mdio_read_only_status () =
  let m = Mdio.create () in
  Alcotest.check_raises "status is read-only"
    (Invalid_argument "Mdio: register 0x8020 is read-only") (fun () ->
      Mdio.write m Mdio.reg_status 0)

let test_mdio_range () =
  let m = Mdio.create () in
  Alcotest.check_raises "16-bit range"
    (Invalid_argument "Mdio: value out of 16-bit range") (fun () ->
      Mdio.write m Mdio.reg_modulation 0x10000)

let test_mdio_access_log () =
  let m = Mdio.create () in
  Mdio.write m Mdio.reg_modulation 1;
  let _ = Mdio.read m Mdio.reg_modulation in
  match Mdio.access_log m with
  | [ ("w", a1, 1); ("r", a2, 1) ] ->
      Alcotest.(check int) "write addr" Mdio.reg_modulation a1;
      Alcotest.(check int) "read addr" Mdio.reg_modulation a2
  | log -> Alcotest.failf "unexpected log of %d entries" (List.length log)

(* --- bvt -------------------------------------------------------------- *)

let test_bvt_noop_change () =
  let rng = Rwc_stats.Rng.create 21 in
  let t = Bvt.create Modulation.Qpsk in
  let c = Bvt.change_modulation t rng ~target:Modulation.Qpsk ~procedure:Bvt.Stock in
  Alcotest.(check (float 1e-9)) "no downtime" 0.0 c.Bvt.downtime_s;
  Alcotest.(check int) "no steps" 0 (List.length c.Bvt.steps)

let test_bvt_stock_sequence () =
  let rng = Rwc_stats.Rng.create 22 in
  let t = Bvt.create Modulation.Qpsk in
  let c = Bvt.change_modulation t rng ~target:Modulation.Qam16 ~procedure:Bvt.Stock in
  Alcotest.(check (list string)) "three steps in order"
    [ "laser-off"; "reprogram"; "laser-on+relock" ]
    (List.map (fun s -> s.Bvt.label) c.Bvt.steps);
  Alcotest.(check bool) "scheme updated" true (Bvt.scheme t = Modulation.Qam16);
  Alcotest.(check bool) "laser back on" true (Mdio.laser_enabled (Bvt.mdio t));
  Alcotest.(check int) "16qam staged" 2 (Mdio.staged_modulation (Bvt.mdio t));
  Alcotest.(check bool) "downtime positive" true (c.Bvt.total_s > 0.0)

let test_bvt_efficient_keeps_laser () =
  let rng = Rwc_stats.Rng.create 23 in
  let t = Bvt.create Modulation.Qpsk in
  let before = List.length (Mdio.access_log (Bvt.mdio t)) in
  let c =
    Bvt.change_modulation t rng ~target:Modulation.Qam8 ~procedure:Bvt.Efficient
  in
  Alcotest.(check int) "one step" 1 (List.length c.Bvt.steps);
  (* No laser-control write may appear in the efficient sequence. *)
  let log = Mdio.access_log (Bvt.mdio t) in
  let new_entries = List.filteri (fun i _ -> i >= before) log in
  List.iter
    (fun (op, addr, _) ->
      if op = "w" then
        Alcotest.(check bool) "never touches laser control" true
          (addr <> Mdio.reg_control))
    new_entries;
  Alcotest.(check bool) "laser stayed on" true (Mdio.laser_enabled (Bvt.mdio t))

let stock_mean_of_samples n seed =
  let rng = Rwc_stats.Rng.create seed in
  let total = ref 0.0 in
  for _ = 1 to n do
    let t = Bvt.create Modulation.Qpsk in
    let c = Bvt.change_modulation t rng ~target:Modulation.Qam8 ~procedure:Bvt.Stock in
    total := !total +. c.Bvt.total_s
  done;
  !total /. float_of_int n

let test_bvt_stock_latency_calibration () =
  (* The paper's testbed: 68 s average for a stock modulation change. *)
  let mean = stock_mean_of_samples 400 24 in
  Alcotest.(check bool)
    (Printf.sprintf "stock mean %.1f in [60, 76]" mean)
    true
    (mean > 60.0 && mean < 76.0)

let test_bvt_efficient_latency_calibration () =
  (* ~35 ms average with the laser held on. *)
  let rng = Rwc_stats.Rng.create 25 in
  let total = ref 0.0 in
  let n = 400 in
  for _ = 1 to n do
    let t = Bvt.create Modulation.Qpsk in
    let c =
      Bvt.change_modulation t rng ~target:Modulation.Qam8 ~procedure:Bvt.Efficient
    in
    total := !total +. c.Bvt.total_s
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "efficient mean %.4f in [0.030, 0.040]" mean)
    true
    (mean > 0.030 && mean < 0.040)

let test_bvt_scheme_codes_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check bool) "roundtrip" true
        (Bvt.scheme_of_code (Bvt.code_of_scheme s) = Some s))
    [ Modulation.Qpsk; Modulation.Qam8; Modulation.Qam16 ];
  (* Every out-of-range code is rejected, on both sides of the valid
     window. *)
  List.iter
    (fun code ->
      Alcotest.(check bool)
        (Printf.sprintf "code %d rejected" code)
        true
        (Bvt.scheme_of_code code = None))
    [ -1; 3; 9; max_int; min_int ]

let test_bvt_noop_same_scheme_zero_steps () =
  let rng = Rwc_stats.Rng.create 26 in
  let t = Bvt.create Modulation.Qam8 in
  let before = List.length (Mdio.access_log (Bvt.mdio t)) in
  (* Even with an always-fail injector a change to the current scheme
     is a pure no-op: zero steps, zero downtime, no register traffic,
     and no injection opportunity. *)
  let faults =
    Rwc_fault.compile
      { Rwc_fault.seed = 1;
        rules =
          [ { Rwc_fault.component = Rwc_fault.Bvt_reconfig;
              prob = 0.999; param = 0.0; window = None } ] }
  in
  (match
     Bvt.try_change_modulation t rng ~faults ~target:Modulation.Qam8
       ~procedure:Bvt.Stock ()
   with
  | Ok c ->
      Alcotest.(check int) "zero steps" 0 (List.length c.Bvt.steps);
      Alcotest.(check (float 1e-9)) "zero downtime" 0.0 c.Bvt.downtime_s;
      Alcotest.(check (float 1e-9)) "zero total" 0.0 c.Bvt.total_s
  | Error _ -> Alcotest.fail "no-op cannot fail");
  Alcotest.(check int) "no register traffic" before
    (List.length (Mdio.access_log (Bvt.mdio t)));
  Alcotest.(check int) "no injection opportunity" 0 (Rwc_fault.injected faults)

let always_fail_injector seed =
  Rwc_fault.compile
    { Rwc_fault.seed;
      rules =
        [ { Rwc_fault.component = Rwc_fault.Bvt_reconfig;
            prob = 0.999; param = 0.0; window = None } ] }

let test_bvt_failure_leaves_degraded () =
  let rng = Rwc_stats.Rng.create 27 in
  let t = Bvt.create Modulation.Qpsk in
  Alcotest.(check bool) "starts active" true (Bvt.health t = Bvt.Active);
  let faults = always_fail_injector 2 in
  (match
     Bvt.try_change_modulation t rng ~faults ~target:Modulation.Qam16
       ~procedure:Bvt.Efficient ()
   with
  | Ok _ -> Alcotest.fail "p=0.999 must fail for this seed"
  | Error f ->
      Alcotest.(check bool) "attempted target recorded" true
        (f.Bvt.attempted = Modulation.Qam16);
      Alcotest.(check bool) "time was lost" true (f.Bvt.elapsed_s > 0.0);
      Alcotest.(check bool) "plain failure, no timeout" false f.Bvt.timed_out);
  Alcotest.(check bool) "degraded after failure" true
    (Bvt.health t = Bvt.Degraded);
  Alcotest.(check bool) "keeps old scheme" true
    (Bvt.scheme t = Modulation.Qpsk);
  Alcotest.(check bool) "carrier unlocked" false (Mdio.locked (Bvt.mdio t));
  (* A no-op change does not recover a degraded transceiver... *)
  (match
     Bvt.try_change_modulation t rng ~target:Modulation.Qpsk
       ~procedure:Bvt.Efficient ()
   with
  | Ok c -> Alcotest.(check int) "noop has no steps" 0 (List.length c.Bvt.steps)
  | Error _ -> Alcotest.fail "no-op cannot fail");
  Alcotest.(check bool) "still degraded after noop" true
    (Bvt.health t = Bvt.Degraded);
  (* ...but a successful real change does. *)
  (match
     Bvt.try_change_modulation t rng ~target:Modulation.Qam8
       ~procedure:Bvt.Efficient ()
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "disarmed injector cannot fail");
  Alcotest.(check bool) "recovered" true (Bvt.health t = Bvt.Active);
  Alcotest.(check bool) "new scheme committed" true
    (Bvt.scheme t = Modulation.Qam8);
  Alcotest.(check bool) "carrier relocked" true (Mdio.locked (Bvt.mdio t))

let test_bvt_timeout_charges_param () =
  let rng = Rwc_stats.Rng.create 28 in
  let t = Bvt.create Modulation.Qpsk in
  let faults =
    Rwc_fault.compile
      { Rwc_fault.seed = 3;
        rules =
          [ { Rwc_fault.component = Rwc_fault.Bvt_timeout;
              prob = 0.999; param = 120.0; window = None } ] }
  in
  match
    Bvt.try_change_modulation t rng ~faults ~target:Modulation.Qam8
      ~procedure:Bvt.Efficient ()
  with
  | Ok _ -> Alcotest.fail "p=0.999 must time out for this seed"
  | Error f ->
      Alcotest.(check bool) "reported as timeout" true f.Bvt.timed_out;
      (* Elapsed covers the steps actually executed plus the injected
         stall, so it must exceed the stall alone. *)
      Alcotest.(check bool) "timeout stall charged" true (f.Bvt.elapsed_s > 120.0);
      Alcotest.(check bool) "degraded" true (Bvt.health t = Bvt.Degraded)

let test_bvt_change_modulation_never_fails_disarmed () =
  let rng = Rwc_stats.Rng.create 29 in
  let t = Bvt.create Modulation.Qpsk in
  let c = Bvt.change_modulation t rng ~target:Modulation.Qam16 ~procedure:Bvt.Stock in
  Alcotest.(check bool) "committed" true (Bvt.scheme t = Modulation.Qam16);
  Alcotest.(check bool) "active" true (Bvt.health t = Bvt.Active);
  Alcotest.(check bool) "downtime = total" true (c.Bvt.downtime_s = c.Bvt.total_s)

let suite =
  [
    Alcotest.test_case "db roundtrip" `Quick test_db_roundtrip;
    Alcotest.test_case "db known values" `Quick test_db_known_values;
    Alcotest.test_case "power addition" `Quick test_power_addition;
    Alcotest.test_case "modulation monotone" `Quick test_modulation_monotone;
    Alcotest.test_case "paper thresholds" `Quick test_modulation_paper_thresholds;
    Alcotest.test_case "best_for_snr" `Quick test_best_for_snr;
    Alcotest.test_case "scheme mapping" `Quick test_scheme_mapping;
    Alcotest.test_case "bits per symbol" `Quick test_bits_per_symbol;
    Alcotest.test_case "single span budget" `Quick test_single_span_budget;
    Alcotest.test_case "spans halve osnr" `Quick test_spans_halve_osnr;
    Alcotest.test_case "longer route lower osnr" `Quick test_longer_route_lower_osnr;
    Alcotest.test_case "launch power shifts osnr" `Quick test_launch_power_shifts_osnr;
    Alcotest.test_case "snr margin" `Quick test_snr_margin;
    Alcotest.test_case "constellations unit energy" `Quick test_constellations_unit_energy;
    Alcotest.test_case "constellation sizes" `Quick test_constellation_sizes;
    Alcotest.test_case "erfc reference values" `Quick test_erfc_reference_values;
    Alcotest.test_case "high snr error free" `Quick test_high_snr_error_free;
    Alcotest.test_case "snr re-estimate" `Quick test_snr_estimate_matches;
    Alcotest.test_case "ser matches theory" `Slow test_ser_matches_theory;
    Alcotest.test_case "lower snr more errors" `Quick test_lower_snr_more_errors;
    Alcotest.test_case "ascii render" `Quick test_render_ascii;
    Alcotest.test_case "mdio initial state" `Quick test_mdio_initial_state;
    Alcotest.test_case "mdio read write" `Quick test_mdio_read_write;
    Alcotest.test_case "mdio unmapped" `Quick test_mdio_unmapped;
    Alcotest.test_case "mdio status read-only" `Quick test_mdio_read_only_status;
    Alcotest.test_case "mdio 16-bit range" `Quick test_mdio_range;
    Alcotest.test_case "mdio access log" `Quick test_mdio_access_log;
    Alcotest.test_case "bvt noop" `Quick test_bvt_noop_change;
    Alcotest.test_case "bvt stock sequence" `Quick test_bvt_stock_sequence;
    Alcotest.test_case "bvt efficient keeps laser" `Quick test_bvt_efficient_keeps_laser;
    Alcotest.test_case "bvt stock ~68s" `Quick test_bvt_stock_latency_calibration;
    Alcotest.test_case "bvt efficient ~35ms" `Quick test_bvt_efficient_latency_calibration;
    Alcotest.test_case "bvt scheme codes" `Quick test_bvt_scheme_codes_roundtrip;
    Alcotest.test_case "bvt same-scheme noop under faults" `Quick
      test_bvt_noop_same_scheme_zero_steps;
    Alcotest.test_case "bvt failure degrades" `Quick test_bvt_failure_leaves_degraded;
    Alcotest.test_case "bvt timeout stall" `Quick test_bvt_timeout_charges_param;
    Alcotest.test_case "bvt disarmed never fails" `Quick
      test_bvt_change_modulation_never_fails_disarmed;
  ]

module Json = Rwc_obs.Json
module Metrics = Rwc_obs.Metrics
module Trace = Rwc_obs.Trace
module Manifest = Rwc_obs.Manifest

(* --- json ---------------------------------------------------------------- *)

let test_json_round_trip () =
  let v =
    Json.Assoc
      [
        ("null", Json.Null);
        ("flag", Json.Bool true);
        ("int", Json.Int (-42));
        ("float", Json.Float 2.5);
        ("whole", Json.Float 21.0);
        ("text", Json.String "line\n\"quoted\"\tand \\ slash");
        ("list", Json.List [ Json.Int 1; Json.Int 2; Json.Assoc [] ]);
      ]
  in
  (match Json.parse (Json.to_string v) with
  | Ok parsed -> Alcotest.(check bool) "compact round-trips" true (parsed = v)
  | Error e -> Alcotest.fail e);
  match Json.parse (Json.to_string_pretty v) with
  | Ok parsed -> Alcotest.(check bool) "pretty round-trips" true (parsed = v)
  | Error e -> Alcotest.fail e

let test_json_parse_escapes () =
  (match Json.parse {|"aA\n"|} with
  | Ok (Json.String s) -> Alcotest.(check string) "unicode escape" "aA\n" s
  | _ -> Alcotest.fail "string expected");
  (* \uXXXX escapes decode to UTF-8: 1-byte (A), 2-byte (e-acute),
     3-byte (CJK) sequences. *)
  (match Json.parse {|"\u0041\u00e9\u4e16"|} with
  | Ok (Json.String s) ->
      Alcotest.(check string) "utf8 from \\u" "A\xc3\xa9\xe4\xb8\x96" s
  | _ -> Alcotest.fail "unicode string expected");
  Alcotest.(check bool) "truncated \\u rejected" true
    (match Json.parse {|"\u00"|} with Error _ -> true | Ok _ -> false);
  (match Json.parse "[1, 2.5, -3e2]" with
  | Ok (Json.List [ Json.Int 1; Json.Float b; Json.Float c ]) ->
      Alcotest.(check (float 1e-9)) "float" 2.5 b;
      Alcotest.(check (float 1e-9)) "exponent" (-300.0) c
  | _ -> Alcotest.fail "number kinds");
  Alcotest.(check bool) "trailing garbage rejected" true
    (match Json.parse "1 2" with Error _ -> true | Ok _ -> false)

(* --- json: round-trip property ------------------------------------------- *)

(* The serializer canonicalizes on the way out: non-finite floats
   become [null] (valid JSON has no NaN/Infinity), and [%.12g] keeps
   ~12 significant digits.  The property compares the parse of the
   rendering against the canonicalized input, with a relative
   tolerance on floats. *)
let rec json_canon = function
  | Json.Float f when not (Float.is_finite f) -> Json.Null
  | Json.List l -> Json.List (List.map json_canon l)
  | Json.Assoc kvs -> Json.Assoc (List.map (fun (k, v) -> (k, json_canon v)) kvs)
  | v -> v

let rec json_eq a b =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool x, Json.Bool y -> x = y
  | Json.Int x, Json.Int y -> x = y
  | Json.Float x, Json.Float y ->
      Float.abs (x -. y) <= 1e-9 *. Float.max 1.0 (Float.abs x)
  | Json.String x, Json.String y -> String.equal x y
  | Json.List x, Json.List y -> (
      try List.for_all2 json_eq x y with Invalid_argument _ -> false)
  | Json.Assoc x, Json.Assoc y -> (
      try
        List.for_all2
          (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && json_eq v1 v2)
          x y
      with Invalid_argument _ -> false)
  | _ -> false

let json_gen =
  QCheck.Gen.(
    (* Arbitrary bytes, including control characters (forcing the
       \uXXXX escape path) and non-ASCII. *)
    let any_char = map Char.chr (int_range 0 255) in
    let string_g = string_size ~gen:any_char (int_bound 12) in
    let float_g =
      frequency
        [
          (5, float);
          (2, map float_of_int small_signed_int);
          (1, return nan);
          (1, return infinity);
          (1, return neg_infinity);
        ]
    in
    sized
    @@ fix (fun self n ->
           let leaf =
             oneof
               [
                 return Json.Null;
                 map (fun b -> Json.Bool b) bool;
                 map (fun i -> Json.Int i) int;
                 map (fun f -> Json.Float f) float_g;
                 map (fun s -> Json.String s) string_g;
               ]
           in
           if n <= 0 then leaf
           else
             frequency
               [
                 (3, leaf);
                 ( 1,
                   map
                     (fun l -> Json.List l)
                     (list_size (int_bound 4) (self (n / 2))) );
                 ( 1,
                   map
                     (fun kvs -> Json.Assoc kvs)
                     (list_size (int_bound 4) (pair string_g (self (n / 2)))) );
               ]))

let prop_json_round_trip =
  QCheck.Test.make ~count:500
    ~name:"json: parse of both renderings recovers the value"
    (QCheck.make ~print:Json.to_string json_gen)
    (fun v ->
      let expect = json_canon v in
      let check_via render =
        match Json.parse (render v) with
        | Error e -> QCheck.Test.fail_reportf "parse error: %s" e
        | Ok parsed -> json_eq expect parsed
      in
      check_via Json.to_string && check_via Json.to_string_pretty)

(* --- metrics ------------------------------------------------------------- *)

let test_registry_uniqueness () =
  Metrics.enable ();
  let a = Metrics.counter "obs-test/uniq" in
  let b = Metrics.counter "obs-test/uniq" in
  Metrics.incr a;
  Metrics.incr b;
  Alcotest.(check int) "one underlying counter" (Metrics.value a)
    (Metrics.value b);
  Alcotest.(check bool) "same handle" true (a == b);
  (try
     ignore (Metrics.gauge "obs-test/uniq");
     Alcotest.fail "kind clash accepted"
   with Invalid_argument _ -> ());
  Metrics.disable ()

let test_disabled_is_noop () =
  let c = Metrics.counter "obs-test/noop" in
  let h = Metrics.histogram "obs-test/noop_h" in
  Metrics.disable ();
  let before = Metrics.value c in
  Metrics.incr c;
  Metrics.add c 10;
  Metrics.observe h 1.0;
  Alcotest.(check int) "counter untouched" before (Metrics.value c);
  Alcotest.(check int) "histogram untouched" 0 (Metrics.hcount h)

let test_histogram_percentiles () =
  Metrics.enable ();
  let h = Metrics.histogram "obs-test/hist" in
  (* Uniform 1ms..1s: the p-th percentile is p/100 seconds. *)
  for i = 1 to 1000 do
    Metrics.observe h (float_of_int i /. 1000.0)
  done;
  Alcotest.(check int) "count" 1000 (Metrics.hcount h);
  Alcotest.(check (float 0.01)) "sum" 500.5 (Metrics.hsum h);
  let check_quantile p expected =
    let got = Metrics.percentile h p in
    Alcotest.(check bool)
      (Printf.sprintf "p%.0f %.4f within 8%% of %.3f" p got expected)
      true
      (Float.abs (got -. expected) /. expected < 0.08)
  in
  check_quantile 50.0 0.5;
  check_quantile 95.0 0.95;
  check_quantile 99.0 0.99;
  (* Extremes are quantized to bucket midpoints but clamped to the
     tracked min/max, so they are within one bucket ratio (~6%). *)
  Alcotest.(check (float 1e-4)) "p0 near min" 0.001 (Metrics.percentile h 0.0);
  Alcotest.(check (float 1e-9)) "p100 clamped to max" 1.0
    (Metrics.percentile h 100.0);
  Metrics.disable ()

(* --- trace --------------------------------------------------------------- *)

let test_span_nesting () =
  Trace.enable ();
  Trace.with_span "a" (fun () ->
      Trace.with_span "b" (fun () -> ignore (Sys.opaque_identity 1));
      Trace.with_span "c" (fun () -> ignore (Sys.opaque_identity 2)));
  Alcotest.(check int) "balanced" 0 (Trace.depth ());
  let spans = Trace.spans () in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let find name = List.find (fun s -> s.Trace.name = name) spans in
  let a = find "a" and b = find "b" and c = find "c" in
  Alcotest.(check int) "root depth" 1 a.Trace.depth;
  Alcotest.(check int) "child depth" 2 b.Trace.depth;
  Alcotest.(check string) "child path" "a;b" b.Trace.path;
  Alcotest.(check string) "sibling path" "a;c" c.Trace.path;
  let inside child =
    child.Trace.ts >= a.Trace.ts -. 1e-9
    && child.Trace.ts +. child.Trace.dur <= a.Trace.ts +. a.Trace.dur +. 1e-9
  in
  Alcotest.(check bool) "children nested in parent" true (inside b && inside c);
  (* Export must be valid JSON with one "X" event per span, preceded by
     the process/thread-name metadata events Perfetto labels tracks
     with. *)
  (match Json.parse (Json.to_string (Trace.to_json ())) with
  | Ok doc -> (
      match Json.member "traceEvents" doc with
      | Some (Json.List events) ->
          let ph e =
            match Json.member "ph" e with
            | Some (Json.String s) -> s
            | _ -> "?"
          in
          let name e =
            match Json.member "name" e with
            | Some (Json.String s) -> s
            | _ -> "?"
          in
          Alcotest.(check int) "trace_event count" 3
            (List.length (List.filter (fun e -> ph e = "X") events));
          let meta = List.filter (fun e -> ph e = "M") events in
          Alcotest.(check bool) "process_name metadata" true
            (List.exists (fun e -> name e = "process_name") meta);
          Alcotest.(check bool) "thread_name metadata" true
            (List.exists (fun e -> name e = "thread_name") meta)
      | _ -> Alcotest.fail "traceEvents missing")
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "flame summary mentions spans" true
    (let s = Trace.flame_summary () in
     let contains sub =
       let n = String.length s and m = String.length sub in
       let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
       at 0
     in
     contains "a" && contains "b" && contains "c");
  Trace.disable ()

let test_span_rebalances_on_exception () =
  Trace.enable ();
  (try Trace.with_span "boom" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "stack re-balanced" 0 (Trace.depth ());
  Alcotest.(check int) "span still recorded" 1 (List.length (Trace.spans ()));
  Trace.disable ()

(* Spans opened on worker domains must carry their domain's id as
   [tid] and each distinct tid must get its own thread_name track in
   the export, so Perfetto renders parallel sections as parallel. *)
let test_span_tids_across_domains () =
  Trace.enable ();
  Fun.protect ~finally:Trace.disable (fun () ->
      Trace.reset ();
      Trace.with_span "control" (fun () -> ignore (Sys.opaque_identity 1));
      (* One index per domain: the caller keeps one range (tid 0), the
         two workers get the others. *)
      Rwc_par.with_pool ~domains:3 (fun pool ->
          Rwc_par.iter_ranges pool ~n:3 (fun ~lo ~hi:_ ->
              Trace.with_span (Printf.sprintf "range-%d" lo) (fun () ->
                  ignore (Sys.opaque_identity lo))));
      let spans = Trace.spans () in
      Alcotest.(check int) "four spans" 4 (List.length spans);
      let control = List.find (fun s -> s.Trace.name = "control") spans in
      Alcotest.(check int) "control-loop span on tid 0" 0 control.Trace.tid;
      let all_tids =
        List.sort_uniq compare (List.map (fun s -> s.Trace.tid) spans)
      in
      Alcotest.(check int) "three distinct tids" 3 (List.length all_tids);
      Alcotest.(check int) "worker spans off the control loop" 2
        (List.length (List.filter (fun t -> t > 0) all_tids));
      match Json.parse (Json.to_string (Trace.to_json ())) with
      | Error e -> Alcotest.fail e
      | Ok doc -> (
          match Json.member "traceEvents" doc with
          | Some (Json.List events) ->
              let thread_name_tids =
                List.filter_map
                  (fun e ->
                    match (Json.member "name" e, Json.member "tid" e) with
                    | Some (Json.String "thread_name"), Some (Json.Int t) ->
                        Some t
                    | _ -> None)
                  events
                |> List.sort_uniq compare
              in
              Alcotest.(check (list int)) "one track per tid" all_tids
                thread_name_tids
          | _ -> Alcotest.fail "traceEvents missing"))

let test_span_disabled_is_identity () =
  Trace.disable ();
  Trace.reset ();
  Alcotest.(check int) "passes value through" 7
    (Trace.with_span "ghost" (fun () -> 7));
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.spans ()))

(* --- manifest ------------------------------------------------------------ *)

let test_manifest_round_trip () =
  let m =
    Manifest.make ~version:"rwc-test-1" ~argv:[ "rwc"; "simulate"; "--days"; "2" ]
      ~seed:42
      ~config:[ ("days", Json.Float 2.0); ("policy", Json.String "adaptive") ]
      ~reports:[ ("adaptive", Json.Assoc [ ("flaps", Json.Int 3) ]) ]
      ~metrics:(Json.Assoc [ ("sim/flaps", Json.Int 3) ])
      ~command:"simulate" ()
  in
  match Json.parse (Json.to_string_pretty (Manifest.to_json m)) with
  | Error e -> Alcotest.fail e
  | Ok parsed -> (
      match Manifest.of_json parsed with
      | Error e -> Alcotest.fail e
      | Ok m' -> Alcotest.(check bool) "round-trips" true (m = m'))

let test_manifest_file () =
  let path = Filename.temp_file "rwc-manifest" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let m = Manifest.make ~version:"rwc-test-2" ~command:"figures" () in
      Manifest.write path m;
      match Manifest.load path with
      | Ok m' ->
          Alcotest.(check string) "version survives" "rwc-test-2"
            m'.Manifest.version
      | Error e -> Alcotest.fail e)

(* --- collector max_fill guard -------------------------------------------- *)

let test_fill_gaps_max_fill () =
  let s i = { Rwc_telemetry.Collector.index = i; snr_db = float_of_int i } in
  let samples = [ s 0; s 1; s 5 ] in
  (* Longest gap is 3 slots (2..4). *)
  Metrics.enable ();
  let rejected = Metrics.counter "collector/gaps_rejected" in
  let before = Metrics.value rejected in
  Alcotest.(check bool) "within limit fills" true
    (Rwc_telemetry.Collector.fill_gaps ~max_fill:3 samples ~n:6 <> None);
  Alcotest.(check bool) "over limit refuses" true
    (Rwc_telemetry.Collector.fill_gaps ~max_fill:2 samples ~n:6 = None);
  Alcotest.(check bool) "trailing gap counts" true
    (Rwc_telemetry.Collector.fill_gaps ~max_fill:3 samples ~n:10 = None);
  Alcotest.(check int) "gaps_rejected bumped" (before + 2)
    (Metrics.value rejected);
  Alcotest.(check bool) "unguarded keeps historic behavior" true
    (Rwc_telemetry.Collector.fill_gaps samples ~n:100 <> None);
  Metrics.disable ()

let test_analyze_of_samples_guard () =
  let fleet = Rwc_telemetry.Fleet.(scaled default ~factor:50) in
  let link = (Rwc_telemetry.Fleet.links fleet).(0) in
  let trace = Rwc_telemetry.Fleet.trace fleet link in
  let n = Array.length trace in
  let rng = Rwc_stats.Rng.create 3 in
  let samples = Rwc_telemetry.Collector.poll rng trace ~loss_prob:0.01 in
  (* 1% iid loss: gaps are short, reconstruction must succeed... *)
  Alcotest.(check bool) "light loss analyzable" true
    (Rwc_telemetry.Analyze.link_report_of_samples link samples ~n <> None);
  (* ...but knocking out a contiguous day must trip the guard. *)
  let holed =
    List.filter
      (fun s -> s.Rwc_telemetry.Collector.index < 100
                || s.Rwc_telemetry.Collector.index > 196)
      samples
  in
  Alcotest.(check bool) "long outage refused" true
    (Rwc_telemetry.Analyze.link_report_of_samples link holed ~n = None)

(* --- runner end-to-end ---------------------------------------------------- *)

let test_runner_metrics_match_report () =
  Metrics.enable ();
  let flaps = Metrics.counter "sim/flaps" in
  let failures = Metrics.counter "sim/failures" in
  let reconfigs = Metrics.counter "sim/reconfigurations" in
  let te_recomputes = Metrics.counter "te/recomputes" in
  let te_hist = Metrics.histogram "te/recompute" in
  let dispatched = Metrics.counter "des/events_dispatched" in
  let base_flaps = Metrics.value flaps
  and base_failures = Metrics.value failures
  and base_reconfigs = Metrics.value reconfigs
  and base_te = Metrics.value te_recomputes
  and base_te_obs = Metrics.hcount te_hist
  and base_dispatched = Metrics.value dispatched in
  let config =
    {
      Rwc_sim.Runner.days = 2.0;
      te_interval_h = 6.0;
      seed = 11;
      wavelengths = 4;
      demand_fraction = 1.0;
      top_demands = 15;
      epsilon = 0.25;
      faults = Rwc_fault.none;
      retry = Rwc_sim.Orchestrator.default_retry_policy;
      guard = Rwc_guard.none;
      rollout = Rwc_rollout.none;
      journal = Rwc_journal.disarmed;
      progress = false;
      domains = 1;
      hooks = Rwc_sim.Runner.no_hooks;
    }
  in
  let r =
    Rwc_sim.Runner.run ~config (Rwc_sim.Runner.Adaptive Rwc_sim.Runner.Efficient)
  in
  Alcotest.(check int) "flap metric = report flaps" r.Rwc_sim.Runner.flaps
    (Metrics.value flaps - base_flaps);
  Alcotest.(check int) "failure metric = report failures"
    r.Rwc_sim.Runner.failures
    (Metrics.value failures - base_failures);
  Alcotest.(check int) "reconfig metric = report reconfigurations"
    r.Rwc_sim.Runner.reconfigurations
    (Metrics.value reconfigs - base_reconfigs);
  let te_delta = Metrics.value te_recomputes - base_te in
  Alcotest.(check bool) "at least one TE recompute" true (te_delta >= 1);
  Alcotest.(check int) "every recompute timed" te_delta
    (Metrics.hcount te_hist - base_te_obs);
  Alcotest.(check bool) "TE durations positive" true
    (Metrics.percentile te_hist 50.0 > 0.0);
  Alcotest.(check bool) "DES dispatched events" true
    (Metrics.value dispatched - base_dispatched > 0);
  Metrics.disable ()

let suite =
  [
    Alcotest.test_case "json round trip" `Quick test_json_round_trip;
    Alcotest.test_case "json escapes" `Quick test_json_parse_escapes;
    QCheck_alcotest.to_alcotest prop_json_round_trip;
    Alcotest.test_case "registry uniqueness" `Quick test_registry_uniqueness;
    Alcotest.test_case "disabled is no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span exception balance" `Quick
      test_span_rebalances_on_exception;
    Alcotest.test_case "span tids across domains" `Quick
      test_span_tids_across_domains;
    Alcotest.test_case "span disabled identity" `Quick
      test_span_disabled_is_identity;
    Alcotest.test_case "manifest round trip" `Quick test_manifest_round_trip;
    Alcotest.test_case "manifest file io" `Quick test_manifest_file;
    Alcotest.test_case "fill_gaps max_fill guard" `Quick test_fill_gaps_max_fill;
    Alcotest.test_case "analyze lossy samples guard" `Quick
      test_analyze_of_samples_guard;
    Alcotest.test_case "runner metrics match report" `Slow
      test_runner_metrics_match_report;
  ]

open Rwc_topology

let sample =
  {|# a toy three-city topology
city A 10.0 20.0 1.5
city B 11.0 21.0 2.5
city C 12.0 19.0 0.5

duct A B 500
duct B C   # derived length
|}

let test_parse_basic () =
  match Parser.parse sample with
  | Error e -> Alcotest.fail e
  | Ok t ->
      Alcotest.(check int) "cities" 3 (Backbone.n_cities t);
      Alcotest.(check int) "ducts" 2 (Array.length t.Backbone.ducts);
      Alcotest.(check string) "first city" "A" t.Backbone.cities.(0).Backbone.name;
      Alcotest.(check (float 1e-9)) "explicit length" 500.0
        t.Backbone.ducts.(0).Backbone.route_km

let test_parse_derives_length () =
  match Parser.parse sample with
  | Error e -> Alcotest.fail e
  | Ok t ->
      let d = t.Backbone.ducts.(1) in
      let expect =
        Backbone.fiber_detour_factor
        *. Backbone.great_circle_km t.Backbone.cities.(1) t.Backbone.cities.(2)
      in
      Alcotest.(check (float 1e-6)) "great-circle x detour" expect
        d.Backbone.route_km

let check_error input fragment =
  match Parser.parse input with
  | Ok _ -> Alcotest.failf "expected error mentioning %S" fragment
  | Error e ->
      let contains s sub =
        let n = String.length sub in
        let rec scan i =
          i + n <= String.length s && (String.sub s i n = sub || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "error %S mentions %S" e fragment)
        true (contains e fragment)

let test_parse_errors () =
  check_error "city A 10 20 1\nduct A Z" "unknown city";
  check_error "city A 10 20 1\ncity A 11 21 1" "duplicate";
  check_error "city A 200 20 1" "latitude";
  check_error "city A 10 20 -1" "population";
  check_error "city A 10 20 1\nduct A A" "self-loop";
  check_error "city A 10 20 1\ncity B 11 21 1\nduct A B -5" "positive";
  check_error "city A 10 20 1\ncity B 11 21 1\nduct A B 5 9" "too many";
  check_error "frobnicate X" "unknown declaration";
  check_error "city A ten 20 1" "latitude";
  check_error "" "no cities"

let test_error_carries_line_number () =
  match Parser.parse "city A 10 20 1\nduct A Z" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e ->
      Alcotest.(check bool) "line 2 cited" true
        (String.length e >= 7 && String.sub e 0 7 = "line 2:")

let test_roundtrip_north_america () =
  let t = Backbone.north_america in
  match Parser.parse (Parser.to_string t) with
  | Error e -> Alcotest.fail e
  | Ok t' ->
      Alcotest.(check int) "cities" (Backbone.n_cities t) (Backbone.n_cities t');
      Alcotest.(check int) "ducts"
        (Array.length t.Backbone.ducts)
        (Array.length t'.Backbone.ducts);
      Array.iteri
        (fun i d ->
          let d' = t'.Backbone.ducts.(i) in
          Alcotest.(check int) "a" d.Backbone.a d'.Backbone.a;
          Alcotest.(check int) "b" d.Backbone.b d'.Backbone.b;
          Alcotest.(check (float 0.05)) "km" d.Backbone.route_km d'.Backbone.route_km)
        t.Backbone.ducts

let test_europe_embedded () =
  let t = Backbone.europe in
  Alcotest.(check int) "16 metros" 16 (Backbone.n_cities t);
  Alcotest.(check bool) "20+ ducts" true (Array.length t.Backbone.ducts >= 20);
  (* Connectivity. *)
  let n = Backbone.n_cities t in
  let adj = Array.make n [] in
  Array.iter
    (fun d ->
      adj.(d.Backbone.a) <- d.Backbone.b :: adj.(d.Backbone.a);
      adj.(d.Backbone.b) <- d.Backbone.a :: adj.(d.Backbone.b))
    t.Backbone.ducts;
  let seen = Array.make n false in
  let q = Queue.create () in
  seen.(0) <- true;
  Queue.add 0 q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          Queue.add w q
        end)
      adj.(v)
  done;
  Alcotest.(check bool) "connected" true (Array.for_all Fun.id seen);
  (* Route lengths are continental-Europe plausible. *)
  Array.iter
    (fun d ->
      Alcotest.(check bool) "plausible length" true
        (d.Backbone.route_km > 100.0 && d.Backbone.route_km < 3000.0))
    t.Backbone.ducts

let test_europe_usable_by_sim () =
  (* The whole pipeline runs on the second topology. *)
  let net = Rwc_sim.Netstate.make ~seed:3 Backbone.europe in
  let g = Rwc_sim.Netstate.graph net in
  let demands =
    Traffic.to_commodities
      (Traffic.top_k (Traffic.gravity Backbone.europe ~total_gbps:5000.0) 10)
  in
  let te = Rwc_core.Te.mcf ~epsilon:0.2 g demands in
  Alcotest.(check bool) "traffic flows" true (te.Rwc_core.Te.total_gbps > 1000.0)

let suite =
  [
    Alcotest.test_case "parse basic" `Quick test_parse_basic;
    Alcotest.test_case "parse derives length" `Quick test_parse_derives_length;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "errors carry line numbers" `Quick test_error_carries_line_number;
    Alcotest.test_case "roundtrip north america" `Quick test_roundtrip_north_america;
    Alcotest.test_case "europe embedded" `Quick test_europe_embedded;
    Alcotest.test_case "europe usable by sim" `Quick test_europe_usable_by_sim;
  ]

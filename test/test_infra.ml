(* Tests for the operational-infrastructure substrates: the upgrade
   orchestrator, the WDM line system, trace persistence and the lossy
   telemetry collector. *)

module Ls = Rwc_optical.Line_system

(* --- orchestrator ------------------------------------------------------ *)

let upgrades =
  [
    { Rwc_core.Translate.phys_edge = 0; extra_gbps = 100.0; penalty_paid = 0.0 };
    { Rwc_core.Translate.phys_edge = 3; extra_gbps = 50.0; penalty_paid = 0.0 };
  ]

let test_orchestrator_sequencing () =
  let rng = Rwc_stats.Rng.create 1 in
  let o =
    Rwc_sim.Orchestrator.execute ~rng ~upgrades
      ~residual_flow:(fun _ -> 0.0)
      ~downtime_mean_s:68.0 ()
  in
  (* Each link contributes exactly three phases in order, links
     strictly serialized. *)
  let phases = List.map (fun e -> (e.Rwc_sim.Orchestrator.phys_edge, e.Rwc_sim.Orchestrator.phase)) o.Rwc_sim.Orchestrator.log in
  Alcotest.(check bool) "exact phase sequence" true
    (phases
    = [
        (0, Rwc_sim.Orchestrator.Drain_started);
        (0, Rwc_sim.Orchestrator.Reconfigure_started);
        (0, Rwc_sim.Orchestrator.Restored);
        (3, Rwc_sim.Orchestrator.Drain_started);
        (3, Rwc_sim.Orchestrator.Reconfigure_started);
        (3, Rwc_sim.Orchestrator.Restored);
      ]);
  (* Timestamps are non-decreasing. *)
  let times = List.map (fun e -> e.Rwc_sim.Orchestrator.time_s) o.Rwc_sim.Orchestrator.log in
  let rec mono = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "monotone clock" true (b >= a);
        mono rest
    | _ -> ()
  in
  mono times;
  Alcotest.(check int) "reconfig count" 2 o.Rwc_sim.Orchestrator.reconfigurations;
  Alcotest.(check bool) "duration covers both drains" true
    (o.Rwc_sim.Orchestrator.total_duration_s >= 60.0)

let test_orchestrator_drained_links_lose_nothing () =
  let rng = Rwc_stats.Rng.create 2 in
  let o =
    Rwc_sim.Orchestrator.execute ~rng ~upgrades
      ~residual_flow:(fun _ -> 0.0)
      ~downtime_mean_s:68.0 ()
  in
  Alcotest.(check (float 1e-9)) "hitless when drained" 0.0
    o.Rwc_sim.Orchestrator.disrupted_gbit

let test_orchestrator_charges_residual_traffic () =
  let rng = Rwc_stats.Rng.create 3 in
  let o =
    Rwc_sim.Orchestrator.execute ~rng ~upgrades
      ~residual_flow:(fun e -> if e = 0 then 10.0 else 0.0)
      ~downtime_mean_s:68.0 ()
  in
  (* Edge 0 keeps 10 Gbps during its ~68 s change: several hundred Gbit. *)
  Alcotest.(check bool) "loss proportional to downtime" true
    (o.Rwc_sim.Orchestrator.disrupted_gbit > 100.0
    && o.Rwc_sim.Orchestrator.disrupted_gbit < 3000.0)

let test_orchestrator_empty_plan () =
  let rng = Rwc_stats.Rng.create 4 in
  let o =
    Rwc_sim.Orchestrator.execute ~rng ~upgrades:[]
      ~residual_flow:(fun _ -> 0.0)
      ~downtime_mean_s:68.0 ()
  in
  Alcotest.(check int) "no log" 0 (List.length o.Rwc_sim.Orchestrator.log);
  Alcotest.(check (float 1e-9)) "no time" 0.0 o.Rwc_sim.Orchestrator.total_duration_s

(* --- line system -------------------------------------------------------- *)

let short_line = Rwc_optical.Fiber.line_of_route_km 400.0
let long_line = Rwc_optical.Fiber.line_of_route_km 4000.0

let test_grid_constants () =
  Alcotest.(check int) "96 channels" 96 Ls.n_channels;
  Alcotest.(check (float 1e-9)) "first frequency" 191_300.0 (Ls.frequency_ghz 0);
  Alcotest.(check (float 1e-9)) "50 GHz spacing" 50.0
    (Ls.frequency_ghz 1 -. Ls.frequency_ghz 0);
  (* C band sits around 1530-1570 nm. *)
  let wl = Ls.wavelength_nm 48 in
  Alcotest.(check bool) (Printf.sprintf "wavelength %.1f nm in C band" wl) true
    (wl > 1520.0 && wl < 1580.0)

let test_tilt_worsens_edges () =
  let t = Ls.create ~line:short_line () in
  let centre = Ls.channel_osnr_db t 47 in
  let edge = Ls.channel_osnr_db t 0 in
  Alcotest.(check bool) "edge below centre" true (edge < centre);
  Alcotest.(check (float 0.05)) "default tilt 1.5 dB" 1.5 (centre -. edge)

let test_light_first_fit () =
  let t = Ls.create ~line:short_line () in
  (match Ls.light t ~gbps:100 () with
  | Ok ch -> Alcotest.(check int) "first free channel" 0 ch
  | Error e -> Alcotest.fail e);
  (match Ls.light t ~gbps:100 () with
  | Ok ch -> Alcotest.(check int) "next channel" 1 ch
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "two lit" 2 (Ls.lit_count t);
  Alcotest.(check int) "capacity" 200 (Ls.capacity_gbps t)

let test_light_explicit_channel () =
  let t = Ls.create ~line:short_line () in
  (match Ls.light t ~channel:40 ~gbps:200 () with
  | Ok ch -> Alcotest.(check int) "requested channel" 40 ch
  | Error e -> Alcotest.fail e);
  (match Ls.light t ~channel:40 ~gbps:100 () with
  | Ok _ -> Alcotest.fail "double lighting"
  | Error _ -> ());
  Alcotest.(check bool) "occupied" true (Ls.occupied t 40);
  Alcotest.(check bool) "rate recorded" true (Ls.rate_of t 40 = Some 200)

let test_light_rejects_bad_rate () =
  let t = Ls.create ~line:short_line () in
  match Ls.light t ~gbps:117 () with
  | Ok _ -> Alcotest.fail "117 is not a denomination"
  | Error _ -> ()

let test_long_line_limits_rate () =
  (* 4000 km: OSNR too low for 200G anywhere, but 100G fits. *)
  let t = Ls.create ~line:long_line () in
  (match Ls.light t ~gbps:200 () with
  | Ok ch -> Alcotest.failf "200G should not fit at 4000 km (got channel %d)" ch
  | Error _ -> ());
  match Ls.light t ~gbps:100 () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_extinguish_frees () =
  let t = Ls.create ~line:short_line () in
  (match Ls.light t ~channel:5 ~gbps:150 () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Ls.extinguish t 5 with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "dark again" false (Ls.occupied t 5);
  Alcotest.(check int) "capacity back to zero" 0 (Ls.capacity_gbps t);
  match Ls.extinguish t 5 with
  | Ok () -> Alcotest.fail "double extinguish"
  | Error _ -> ()

let test_fill_whole_band () =
  let t = Ls.create ~line:short_line () in
  let lit = ref 0 in
  let continue = ref true in
  while !continue do
    match Ls.light t ~gbps:100 () with
    | Ok _ -> incr lit
    | Error _ -> continue := false
  done;
  Alcotest.(check int) "whole band lit" Ls.n_channels !lit;
  Alcotest.(check int) "no free channels" 0 (List.length (Ls.free_channels t))

(* --- store ----------------------------------------------------------------- *)

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let sample_trace =
  [| 15.5; 14.2; 0.0; 16.125; 13.999999; 17.25 |]

let test_csv_roundtrip () =
  let path = tmp "rwc_test_trace.csv" in
  Rwc_telemetry.Store.write_trace_csv path sample_trace;
  (match Rwc_telemetry.Store.read_trace_csv path with
  | Ok back ->
      Alcotest.(check int) "length" (Array.length sample_trace) (Array.length back);
      Array.iteri
        (fun i v -> Alcotest.(check (float 1e-5)) "value" sample_trace.(i) v)
        back
  | Error e -> Alcotest.fail e);
  Sys.remove path

let test_binary_roundtrip_exact () =
  let path = tmp "rwc_test_trace.bin" in
  Rwc_telemetry.Store.write_trace_binary path sample_trace;
  (match Rwc_telemetry.Store.read_trace_binary path with
  | Ok back ->
      Alcotest.(check bool) "bit-exact" true (back = sample_trace)
  | Error e -> Alcotest.fail e);
  Sys.remove path

let test_binary_rejects_garbage () =
  let path = tmp "rwc_test_garbage.bin" in
  let oc = open_out_bin path in
  output_string oc "NOPE" ;
  close_out oc;
  (match Rwc_telemetry.Store.read_trace_binary path with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  Sys.remove path

let test_binary_rejects_truncated () =
  let path = tmp "rwc_test_trunc.bin" in
  Rwc_telemetry.Store.write_trace_binary path sample_trace;
  (* Chop the last 4 bytes. *)
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic (len - 4) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc;
  (match Rwc_telemetry.Store.read_trace_binary path with
  | Ok _ -> Alcotest.fail "accepted truncated file"
  | Error _ -> ());
  Sys.remove path

let test_missing_file_is_error () =
  match Rwc_telemetry.Store.read_trace_csv "/nonexistent/rwc.csv" with
  | Ok _ -> Alcotest.fail "read a missing file"
  | Error _ -> ()

(* --- collector ---------------------------------------------------------------- *)

let test_poll_lossless () =
  let rng = Rwc_stats.Rng.create 11 in
  let samples = Rwc_telemetry.Collector.poll rng sample_trace ~loss_prob:0.0 in
  Alcotest.(check int) "all slots" (Array.length sample_trace) (List.length samples);
  Alcotest.(check (float 1e-9)) "completeness 1" 1.0
    (Rwc_telemetry.Collector.completeness samples ~n:(Array.length sample_trace))

let test_poll_lossy_rate () =
  let rng = Rwc_stats.Rng.create 12 in
  let trace = Array.make 20_000 10.0 in
  let samples = Rwc_telemetry.Collector.poll rng trace ~loss_prob:0.3 in
  let c = Rwc_telemetry.Collector.completeness samples ~n:20_000 in
  Alcotest.(check (float 0.02)) "~70% arrive" 0.7 c

let test_fill_gaps_locf () =
  let samples =
    [ { Rwc_telemetry.Collector.index = 1; snr_db = 5.0 };
      { Rwc_telemetry.Collector.index = 3; snr_db = 9.0 } ]
  in
  match Rwc_telemetry.Collector.fill_gaps samples ~n:5 with
  | None -> Alcotest.fail "samples exist"
  | Some dense ->
      Alcotest.(check (array (float 1e-9))) "locf + backfill"
        [| 5.0; 5.0; 5.0; 9.0; 9.0 |] dense

let test_fill_gaps_empty () =
  Alcotest.(check bool) "none" true
    (Rwc_telemetry.Collector.fill_gaps [] ~n:5 = None)

let test_max_gap () =
  let s i = { Rwc_telemetry.Collector.index = i; snr_db = 0.0 } in
  Alcotest.(check int) "interior gap" 3
    (Rwc_telemetry.Collector.max_gap [ s 0; s 4; s 5 ] ~n:6);
  Alcotest.(check int) "trailing gap" 4
    (Rwc_telemetry.Collector.max_gap [ s 0; s 1 ] ~n:6);
  Alcotest.(check int) "empty stream" 6 (Rwc_telemetry.Collector.max_gap [] ~n:6)

let test_analysis_robust_to_loss () =
  (* The paper's HDR statistic barely moves under 5% poll loss with
     LOCF gap filling. *)
  let p = Rwc_telemetry.Snr_model.default_params ~baseline_db:15.0 () in
  let trace, _ =
    Rwc_telemetry.Snr_model.generate (Rwc_stats.Rng.create 13) p ~years:1.0
  in
  let samples =
    Rwc_telemetry.Collector.poll (Rwc_stats.Rng.create 14) trace ~loss_prob:0.05
  in
  match Rwc_telemetry.Collector.fill_gaps samples ~n:(Array.length trace) with
  | None -> Alcotest.fail "samples exist"
  | Some dense ->
      let exact = Rwc_stats.Hdr.of_samples trace in
      let filled = Rwc_stats.Hdr.of_samples dense in
      Alcotest.(check (float 0.1)) "hdr width stable"
        (Rwc_stats.Hdr.width exact) (Rwc_stats.Hdr.width filled)

let suite =
  [
    Alcotest.test_case "orchestrator sequencing" `Quick test_orchestrator_sequencing;
    Alcotest.test_case "orchestrator hitless when drained" `Quick
      test_orchestrator_drained_links_lose_nothing;
    Alcotest.test_case "orchestrator charges residual" `Quick
      test_orchestrator_charges_residual_traffic;
    Alcotest.test_case "orchestrator empty plan" `Quick test_orchestrator_empty_plan;
    Alcotest.test_case "grid constants" `Quick test_grid_constants;
    Alcotest.test_case "tilt worsens edges" `Quick test_tilt_worsens_edges;
    Alcotest.test_case "light first fit" `Quick test_light_first_fit;
    Alcotest.test_case "light explicit channel" `Quick test_light_explicit_channel;
    Alcotest.test_case "light rejects bad rate" `Quick test_light_rejects_bad_rate;
    Alcotest.test_case "long line limits rate" `Quick test_long_line_limits_rate;
    Alcotest.test_case "extinguish frees" `Quick test_extinguish_frees;
    Alcotest.test_case "fill whole band" `Quick test_fill_whole_band;
    Alcotest.test_case "store csv roundtrip" `Quick test_csv_roundtrip;
    Alcotest.test_case "store binary roundtrip" `Quick test_binary_roundtrip_exact;
    Alcotest.test_case "store rejects garbage" `Quick test_binary_rejects_garbage;
    Alcotest.test_case "store rejects truncated" `Quick test_binary_rejects_truncated;
    Alcotest.test_case "store missing file" `Quick test_missing_file_is_error;
    Alcotest.test_case "poll lossless" `Quick test_poll_lossless;
    Alcotest.test_case "poll lossy rate" `Quick test_poll_lossy_rate;
    Alcotest.test_case "fill gaps locf" `Quick test_fill_gaps_locf;
    Alcotest.test_case "fill gaps empty" `Quick test_fill_gaps_empty;
    Alcotest.test_case "max gap" `Quick test_max_gap;
    Alcotest.test_case "analysis robust to loss" `Quick test_analysis_robust_to_loss;
  ]

open Rwc_flow

(* The textbook Suurballe example where the greedy choice (take the
   shortest path, then the shortest remaining) is suboptimal or even
   infeasible: the shortest path uses the only edge both disjoint
   paths would need. *)

let trap () =
  (* 0 -> 1 -> 3 (cost 1+1 = 2, the shortest), 0 -> 2 -> 3 (2+2),
     and the cross edges 0->3?  Build the classic: greedy takes
     0-1-3; removing it leaves 0-2-3.  Both exist -> pair found. *)
  let g = Graph.create ~n:4 in
  let e01 = Graph.add_edge g ~src:0 ~dst:1 ~capacity:1.0 ~cost:1.0 () in
  let e13 = Graph.add_edge g ~src:1 ~dst:3 ~capacity:1.0 ~cost:1.0 () in
  let e02 = Graph.add_edge g ~src:0 ~dst:2 ~capacity:1.0 ~cost:2.0 () in
  let e23 = Graph.add_edge g ~src:2 ~dst:3 ~capacity:1.0 ~cost:2.0 () in
  (g, e01, e13, e02, e23)

let test_simple_pair () =
  let g, _, _, _, _ = trap () in
  match Disjoint.shortest_pair g ~src:0 ~dst:3 with
  | None -> Alcotest.fail "two disjoint paths exist"
  | Some pair ->
      Alcotest.(check bool) "disjoint" true (Disjoint.edge_disjoint pair);
      Alcotest.(check (float 1e-9)) "total cost 2 + 4" 6.0 pair.Disjoint.total_cost;
      Alcotest.(check (float 1e-9)) "primary is the cheap one" 2.0
        (Shortest.path_cost g pair.Disjoint.primary)

let test_interlaced_optimum () =
  (* The case Suurballe exists for: the shortest path must be partially
     abandoned.  Classic 6-node instance:
       0->1 (1), 1->3 (1), 3->5 (1)   the shortest path, cost 3
       0->2 (2), 2->3 (2)             left side
       1->4 (2), 4->5 (2)             right side
     Greedy takes 0-1-3-5; the remainder has NO disjoint path
     (2->3 dead-ends into 3 whose out-edge is used, 1 is used).
     The optimal pair interlaces: 0-1-4-5 and 0-2-3-5, total 10. *)
  let g = Graph.create ~n:6 in
  let add s d c = ignore (Graph.add_edge g ~src:s ~dst:d ~capacity:1.0 ~cost:c ()) in
  add 0 1 1.0;
  add 1 3 1.0;
  add 3 5 1.0;
  add 0 2 2.0;
  add 2 3 2.0;
  add 1 4 2.0;
  add 4 5 2.0;
  match Disjoint.shortest_pair g ~src:0 ~dst:5 with
  | None -> Alcotest.fail "the interlaced pair exists"
  | Some pair ->
      Alcotest.(check bool) "disjoint" true (Disjoint.edge_disjoint pair);
      Alcotest.(check (float 1e-9)) "optimal total" 10.0 pair.Disjoint.total_cost

let test_no_pair_single_bridge () =
  (* All connectivity crosses one bridge edge: no disjoint pair. *)
  let g = Graph.create ~n:4 in
  let add s d = ignore (Graph.add_edge g ~src:s ~dst:d ~capacity:1.0 ~cost:1.0 ()) in
  add 0 1;
  add 1 2;
  (* bridge *)
  add 2 3;
  Alcotest.(check bool) "no pair over a bridge" true
    (Disjoint.shortest_pair g ~src:0 ~dst:3 = None)

let test_no_path_at_all () =
  let g = Graph.create ~n:2 in
  Alcotest.(check bool) "disconnected" true
    (Disjoint.shortest_pair g ~src:0 ~dst:1 = None)

let test_pair_on_backbone () =
  let bb = Rwc_topology.Backbone.north_america in
  let g =
    Rwc_topology.Backbone.to_graph bb
      ~capacity_of:(fun _ -> 400.0)
      ~cost_of:(fun d -> d.Rwc_topology.Backbone.route_km)
  in
  let src = Rwc_topology.Backbone.city_index bb "NewYork" in
  let dst = Rwc_topology.Backbone.city_index bb "LosAngeles" in
  match Disjoint.shortest_pair g ~src ~dst with
  | None -> Alcotest.fail "the NA backbone is 2-edge-connected NY->LA"
  | Some pair ->
      Alcotest.(check bool) "disjoint" true (Disjoint.edge_disjoint pair);
      (* Primary at least the great-circle, at most one-and-a-half
         planets. *)
      let len = Shortest.path_cost g pair.Disjoint.primary in
      Alcotest.(check bool)
        (Printf.sprintf "primary %.0f km plausible" len)
        true
        (len > 3900.0 && len < 8000.0)

let prop_pair_disjoint_and_bounded =
  (* Wherever a pair exists: edge-disjoint, and total cost no better
     than twice the single shortest path (sanity lower bound) and no
     worse than any two greedily found disjoint paths. *)
  let gen =
    QCheck.Gen.(
      let* n = int_range 4 8 in
      let* edges =
        list_size (int_range 6 20)
          (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 1 9))
      in
      return (n, edges))
  in
  QCheck.Test.make ~count:200
    ~name:"disjoint pair: edge-disjoint, cost >= 2x shortest"
    (QCheck.make ~print:(fun (n, e) -> Printf.sprintf "n=%d m=%d" n (List.length e)) gen)
    (fun (n, edges) ->
      let g = Graph.create ~n in
      List.iter
        (fun (s, d, c) ->
          if s <> d then
            ignore
              (Graph.add_edge g ~src:s ~dst:d ~capacity:1.0
                 ~cost:(float_of_int c) ()))
        edges;
      match Disjoint.shortest_pair g ~src:0 ~dst:(n - 1) with
      | None -> true
      | Some pair ->
          let sp =
            match Shortest.dijkstra g ~src:0 ~dst:(n - 1) with
            | Some p -> Shortest.path_cost g p
            | None -> 0.0
          in
          Disjoint.edge_disjoint pair
          && pair.Disjoint.total_cost >= (2.0 *. sp) -. 1e-9)

(* --- lambda-granular simulation ------------------------------------------ *)

let test_lambda_sim_high_correlation_close () =
  (* At the paper's Fig. 1 correlation (~wavelengths in lockstep), the
     simple per-duct controller captures almost all the capacity. *)
  let per_lambda, per_duct =
    Rwc_sim.Lambda_sim.compare_granularities ~seed:5 ~baseline_db:14.0
      ~n_lambdas:8 ~correlation:0.9 ~years:0.5 ()
  in
  let ratio =
    per_duct.Rwc_sim.Lambda_sim.mean_capacity_gbps
    /. per_lambda.Rwc_sim.Lambda_sim.mean_capacity_gbps
  in
  Alcotest.(check bool)
    (Printf.sprintf "per-duct captures %.1f%%" (100.0 *. ratio))
    true (ratio > 0.9);
  Alcotest.(check bool) "per-wavelength never worse" true (ratio <= 1.0 +. 1e-9)

let test_lambda_sim_low_correlation_gap () =
  (* With independent wavelengths the worst-of-N tracking costs more. *)
  let hi_l, hi_d =
    Rwc_sim.Lambda_sim.compare_granularities ~seed:6 ~baseline_db:14.0
      ~n_lambdas:8 ~correlation:0.95 ~years:0.5 ()
  in
  let lo_l, lo_d =
    Rwc_sim.Lambda_sim.compare_granularities ~seed:6 ~baseline_db:14.0
      ~n_lambdas:8 ~correlation:0.0 ~years:0.5 ()
  in
  let gap (l, d) =
    1.0
    -. (d.Rwc_sim.Lambda_sim.mean_capacity_gbps
       /. l.Rwc_sim.Lambda_sim.mean_capacity_gbps)
  in
  Alcotest.(check bool) "gap grows as correlation drops" true
    (gap (lo_l, lo_d) >= gap (hi_l, hi_d) -. 0.01)

let test_lambda_sim_capacity_bounds () =
  let o =
    Rwc_sim.Lambda_sim.simulate ~seed:7 ~baseline_db:16.0 ~n_lambdas:4
      ~correlation:0.8 ~years:0.2 Rwc_sim.Lambda_sim.Per_wavelength
  in
  Alcotest.(check bool) "within hardware bounds" true
    (o.Rwc_sim.Lambda_sim.mean_capacity_gbps >= 0.0
    && o.Rwc_sim.Lambda_sim.mean_capacity_gbps <= 4.0 *. 200.0);
  Alcotest.(check int) "wavelength count" 4 o.Rwc_sim.Lambda_sim.wavelength_count

let test_correlated_generation_shape () =
  let p = Rwc_telemetry.Snr_model.default_params ~baseline_db:15.0 () in
  let traces =
    Rwc_telemetry.Snr_model.generate_correlated
      (Rwc_stats.Rng.create 8)
      p ~n_lambdas:5 ~correlation:0.7 ~years:0.1
  in
  Alcotest.(check int) "five traces" 5 (Array.length traces);
  let n = Array.length traces.(0) in
  Array.iter
    (fun t -> Alcotest.(check int) "same length" n (Array.length t))
    traces;
  Array.iter
    (Array.iter (fun v -> Alcotest.(check bool) "non-negative" true (v >= 0.0)))
    traces

let test_correlated_more_similar_when_correlated () =
  let p = Rwc_telemetry.Snr_model.default_params ~baseline_db:15.0 () in
  let mean_abs_diff correlation =
    let traces =
      Rwc_telemetry.Snr_model.generate_correlated
        (Rwc_stats.Rng.create 9)
        p ~n_lambdas:2 ~correlation ~years:0.2
    in
    let total = ref 0.0 in
    Array.iteri
      (fun i v -> total := !total +. Float.abs (v -. traces.(1).(i)))
      traces.(0);
    !total /. float_of_int (Array.length traces.(0))
  in
  Alcotest.(check bool) "correlation tightens wavelengths" true
    (mean_abs_diff 0.95 < mean_abs_diff 0.0)

let suite =
  [
    Alcotest.test_case "simple pair" `Quick test_simple_pair;
    Alcotest.test_case "interlaced optimum" `Quick test_interlaced_optimum;
    Alcotest.test_case "no pair over bridge" `Quick test_no_pair_single_bridge;
    Alcotest.test_case "no path at all" `Quick test_no_path_at_all;
    Alcotest.test_case "pair on backbone" `Quick test_pair_on_backbone;
    QCheck_alcotest.to_alcotest prop_pair_disjoint_and_bounded;
    Alcotest.test_case "lambda sim: high correlation" `Quick
      test_lambda_sim_high_correlation_close;
    Alcotest.test_case "lambda sim: low correlation gap" `Quick
      test_lambda_sim_low_correlation_gap;
    Alcotest.test_case "lambda sim: capacity bounds" `Quick test_lambda_sim_capacity_bounds;
    Alcotest.test_case "correlated generation shape" `Quick test_correlated_generation_shape;
    Alcotest.test_case "correlated similarity" `Quick
      test_correlated_more_similar_when_correlated;
  ]

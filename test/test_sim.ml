open Rwc_sim

(* --- event queue ------------------------------------------------------ *)

let test_queue_ordering () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:3.0 "c";
  Event_queue.add q ~time:1.0 "a";
  Event_queue.add q ~time:2.0 "b";
  let order = List.init 3 (fun _ -> Event_queue.pop q) in
  Alcotest.(check bool) "sorted" true
    (order = [ Some (1.0, "a"); Some (2.0, "b"); Some (3.0, "c") ]);
  Alcotest.(check bool) "drained" true (Event_queue.pop q = None)

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:1.0 "first";
  Event_queue.add q ~time:1.0 "second";
  Event_queue.add q ~time:1.0 "third";
  let labels =
    List.init 3 (fun _ ->
        match Event_queue.pop q with Some (_, l) -> l | None -> "?")
  in
  Alcotest.(check (list string)) "insertion order on ties"
    [ "first"; "second"; "third" ] labels

let test_queue_stress_sorted () =
  let rng = Rwc_stats.Rng.create 5 in
  let q = Event_queue.create () in
  for i = 1 to 1000 do
    Event_queue.add q ~time:(Rwc_stats.Rng.float rng) i
  done;
  Alcotest.(check int) "size" 1000 (Event_queue.size q);
  let last = ref neg_infinity in
  for _ = 1 to 1000 do
    match Event_queue.pop q with
    | Some (t, _) ->
        Alcotest.(check bool) "non-decreasing" true (t >= !last);
        last := t
    | None -> Alcotest.fail "premature drain"
  done

(* --- des --------------------------------------------------------------- *)

let test_des_runs_in_order () =
  let engine = Des.create () in
  let log = ref [] in
  Des.schedule engine ~at:5.0 (fun _ -> log := 5 :: !log);
  Des.schedule engine ~at:1.0 (fun _ -> log := 1 :: !log);
  Des.schedule engine ~at:3.0 (fun _ -> log := 3 :: !log);
  Des.run engine ~until:10.0;
  Alcotest.(check (list int)) "chronological" [ 1; 3; 5 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at horizon" 10.0 (Des.now engine)

let test_des_horizon () =
  let engine = Des.create () in
  let fired = ref false in
  Des.schedule engine ~at:20.0 (fun _ -> fired := true);
  Des.run engine ~until:10.0;
  Alcotest.(check bool) "beyond horizon pends" false !fired;
  Alcotest.(check int) "still pending" 1 (Des.pending engine)

let test_des_handlers_schedule () =
  let engine = Des.create () in
  let count = ref 0 in
  let rec tick e =
    incr count;
    if Des.now e < 4.5 then Des.schedule_in e ~after:1.0 tick
  in
  Des.schedule engine ~at:0.0 tick;
  Des.run engine ~until:10.0;
  Alcotest.(check int) "self-scheduling chain" 6 !count

let test_des_rejects_past () =
  let engine = Des.create () in
  Des.schedule engine ~at:5.0 (fun e ->
      Alcotest.check_raises "no time travel"
        (Invalid_argument "Des.schedule: event in the past") (fun () ->
          Des.schedule e ~at:1.0 (fun _ -> ())));
  Des.run engine ~until:10.0

(* --- netstate ------------------------------------------------------------ *)

let backbone = Rwc_topology.Backbone.north_america

let test_netstate_initial () =
  let net = Netstate.make ~seed:3 backbone in
  Alcotest.(check int) "one state per duct"
    (Array.length backbone.Rwc_topology.Backbone.ducts)
    (Array.length net.Netstate.ducts);
  Array.iter
    (fun d ->
      Alcotest.(check bool) "up" true d.Netstate.up;
      Alcotest.(check int) "100G default" 100 d.Netstate.per_lambda_gbps;
      Alcotest.(check (float 1e-9)) "4 lambdas x 100G" 400.0 (Netstate.capacity_gbps d))
    net.Netstate.ducts

let test_netstate_graph_shape () =
  let net = Netstate.make ~seed:3 backbone in
  let g = Netstate.graph net in
  Alcotest.(check int) "two directed edges per duct"
    (2 * Array.length backbone.Rwc_topology.Backbone.ducts)
    (Rwc_flow.Graph.n_edges g);
  Alcotest.(check int) "city vertices"
    (Rwc_topology.Backbone.n_cities backbone)
    (Rwc_flow.Graph.n_vertices g)

let test_netstate_down_zero_capacity () =
  let net = Netstate.make ~seed:3 backbone in
  let d = net.Netstate.ducts.(0) in
  d.Netstate.up <- false;
  Alcotest.(check (float 1e-9)) "down = 0" 0.0 (Netstate.capacity_gbps d);
  let g = Netstate.graph net in
  Alcotest.(check (float 1e-9)) "edge reflects down" 0.0
    (Rwc_flow.Graph.edge g 0).Rwc_flow.Graph.capacity

let test_netstate_headroom () =
  let net = Netstate.make ~seed:3 backbone in
  let d = net.Netstate.ducts.(0) in
  d.Netstate.current_snr_db <- 20.0;
  (* 200G feasible, configured at 100: headroom = 4 x 100. *)
  Alcotest.(check (float 1e-9)) "headroom" 400.0 (Netstate.headroom d);
  d.Netstate.current_snr_db <- 7.0;
  Alcotest.(check (float 1e-9)) "no headroom below 125 threshold" 0.0
    (Netstate.headroom d)

(* --- runner (integration) -------------------------------------------------- *)

let fast_config =
  (* Offered load deliberately exceeds the static-100G network (130%)
     so the throughput comparison exercises the capacity headroom: a
     fully-served network would show no gain by construction. *)
  {
    Runner.days = 5.0;
    te_interval_h = 12.0;
    seed = 11;
    wavelengths = 4;
    demand_fraction = 1.3;
    top_demands = 20;
    epsilon = 0.2;
    faults = Rwc_fault.none;
    retry = Orchestrator.default_retry_policy;
    guard = Rwc_guard.none;
    rollout = Rwc_rollout.none;
    journal = Rwc_journal.disarmed;
    progress = false;
    domains = 1;
    hooks = Runner.no_hooks;
  }

let reports = lazy (Runner.compare_policies ~config:fast_config ())

let find policy =
  List.find (fun r -> r.Runner.policy = policy) (Lazy.force reports)

let test_runner_static_100_baseline () =
  let r = find Runner.Static_100 in
  Alcotest.(check bool) "delivers something" true (r.Runner.delivered_pbit > 0.0);
  Alcotest.(check int) "no reconfigurations" 0 r.Runner.reconfigurations;
  Alcotest.(check bool) "availability high" true (r.Runner.duct_availability > 0.95)

let test_runner_adaptive_beats_static_throughput () =
  let s = find Runner.Static_100 in
  let a = find (Runner.Adaptive Runner.Efficient) in
  (* The paper's claim: 75-100% capacity gain from adapting to SNR. *)
  let gain = a.Runner.avg_throughput_gbps /. s.Runner.avg_throughput_gbps in
  Alcotest.(check bool)
    (Printf.sprintf "gain %.2fx in [1.3, 2.3]" gain)
    true
    (gain > 1.3 && gain < 2.3)

let test_runner_adaptive_availability () =
  let m = find Runner.Static_max in
  let a = find (Runner.Adaptive Runner.Efficient) in
  Alcotest.(check bool) "adaptive >= static-max availability" true
    (a.Runner.duct_availability >= m.Runner.duct_availability -. 1e-9);
  Alcotest.(check bool) "adaptive has no more failures" true
    (a.Runner.failures <= m.Runner.failures)

let test_runner_efficient_less_downtime () =
  let stock = find (Runner.Adaptive Runner.Stock) in
  let eff = find (Runner.Adaptive Runner.Efficient) in
  Alcotest.(check bool) "orders of magnitude less downtime" true
    (eff.Runner.reconfig_downtime_s < stock.Runner.reconfig_downtime_s /. 100.0
    || stock.Runner.reconfigurations = 0)

let test_runner_offered_bounds_delivered () =
  List.iter
    (fun r ->
      Alcotest.(check bool) "delivered <= offered" true
        (r.Runner.delivered_pbit <= r.Runner.offered_pbit +. 1e-6))
    (Lazy.force reports)

let test_runner_deterministic () =
  let a = Runner.run ~config:fast_config Runner.Static_100 in
  let b = Runner.run ~config:fast_config Runner.Static_100 in
  Alcotest.(check (float 1e-9)) "same delivered" a.Runner.delivered_pbit
    b.Runner.delivered_pbit;
  Alcotest.(check int) "same failures" a.Runner.failures b.Runner.failures

(* --- golden: faults-off output is byte-identical to pre-fault-layer ------- *)

(* These strings were captured from the build immediately BEFORE the
   fault-injection layer landed (config = default with days=2.0,
   seed=7).  They pin the guarantee that `--faults none` consumes no
   injector randomness and emits no fault fields: any drift in either
   the pretty-printed report or its JSON is a regression, not a
   formatting nit. *)
let golden_pp =
  [
    "static-100G            delivered=  600.80 Pbit  avg-tput= 3476.9 Gbps  \
     avg-cap=17200.0 Gbps  avail=1.00000  fail=   0  flap=   0  reconf=   0  \
     downtime=     0.0s";
    "static-max             delivered= 1200.13 Pbit  avg-tput= 6945.2 Gbps  \
     avg-cap=34275.5 Gbps  avail=0.99927  fail=   3  flap=   0  reconf=   0  \
     downtime=     0.0s";
    "adaptive-stock-bvt     delivered= 1162.77 Pbit  avg-tput= 6729.0 Gbps  \
     avg-cap=33385.9 Gbps  avail=0.99835  fail=   0  flap=   3  reconf= 177  \
     downtime= 12270.6s";
    "adaptive-efficient-bvt delivered= 1169.19 Pbit  avg-tput= 6766.2 Gbps  \
     avg-cap=33385.9 Gbps  avail=1.00000  fail=   0  flap=   3  reconf= 177  \
     downtime=     6.3s";
  ]

let golden_json =
  [
    {|{"policy":"static-100G","delivered_pbit":600.802297115,"offered_pbit":2229.12,"avg_throughput_gbps":3476.86514534,"avg_capacity_gbps":17200.0,"duct_availability":1.0,"failures":0,"flaps":0,"reconfigurations":0,"reconfig_downtime_s":0.0}|};
    {|{"policy":"static-max","delivered_pbit":1200.12720107,"offered_pbit":2229.12,"avg_throughput_gbps":6945.18056173,"avg_capacity_gbps":34275.5208333,"duct_availability":0.999273255814,"failures":3,"flaps":0,"reconfigurations":0,"reconfig_downtime_s":0.0}|};
    {|{"policy":"adaptive-stock-bvt","delivered_pbit":1162.7674053,"offered_pbit":2229.12,"avg_throughput_gbps":6728.97803991,"avg_capacity_gbps":33385.9375,"duct_availability":0.998348592324,"failures":0,"flaps":3,"reconfigurations":177,"reconfig_downtime_s":12270.619598}|};
    {|{"policy":"adaptive-efficient-bvt","delivered_pbit":1169.19333709,"offered_pbit":2229.12,"avg_throughput_gbps":6766.16514518,"avg_capacity_gbps":33385.9375,"duct_availability":0.999999150011,"failures":0,"flaps":3,"reconfigurations":177,"reconfig_downtime_s":6.31576008719}|};
  ]

let golden_reports =
  lazy
    (Runner.compare_policies
       ~config:{ Runner.default_config with days = 2.0; seed = 7 }
       ())

let test_golden_pp_byte_identical () =
  List.iter2
    (fun expected r ->
      Alcotest.(check string) "pp_report byte-identical" expected
        (Format.asprintf "%a" Runner.pp_report r))
    golden_pp (Lazy.force golden_reports)

let test_golden_json_byte_identical () =
  List.iter2
    (fun expected r ->
      Alcotest.(check string) "json_of_report byte-identical" expected
        (Rwc_obs.Json.to_string (Runner.json_of_report r)))
    golden_json (Lazy.force golden_reports);
  List.iter
    (fun r ->
      Alcotest.(check bool) "no fault block without a plan" true
        (r.Runner.fault_stats = None);
      Alcotest.(check bool) "no guard block without a plan" true
        (r.Runner.guard_stats = None))
    (Lazy.force golden_reports)

(* The same byte-identity with the guard plan spelled out explicitly:
   `--guard none` (the layer linked but disarmed) must reproduce the
   pre-guard goldens exactly. *)
let test_golden_guard_none_byte_identical () =
  let plan =
    match Rwc_guard.of_string "none" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let reports =
    Runner.compare_policies
      ~config:{ Runner.default_config with days = 2.0; seed = 7; guard = plan }
      ()
  in
  List.iter2
    (fun expected r ->
      Alcotest.(check string) "pp_report byte-identical" expected
        (Format.asprintf "%a" Runner.pp_report r))
    golden_pp reports;
  List.iter2
    (fun expected r ->
      Alcotest.(check string) "json_of_report byte-identical" expected
        (Rwc_obs.Json.to_string (Runner.json_of_report r)))
    golden_json reports

(* The journal layer makes the same promise: a run without [--journal]
   (the disarmed sink threaded through the config) must reproduce the
   pre-journal goldens byte for byte — no extra randomness consumed, no
   new report fields, no formatting drift. *)
let test_golden_journal_off_byte_identical () =
  let reports =
    Runner.compare_policies
      ~config:
        {
          Runner.default_config with
          days = 2.0;
          seed = 7;
          journal = Rwc_journal.disarmed;
        }
      ()
  in
  List.iter2
    (fun expected r ->
      Alcotest.(check string) "pp_report byte-identical" expected
        (Format.asprintf "%a" Runner.pp_report r))
    golden_pp reports;
  List.iter2
    (fun expected r ->
      Alcotest.(check string) "json_of_report byte-identical" expected
        (Rwc_obs.Json.to_string (Runner.json_of_report r)))
    golden_json reports;
  List.iter
    (fun r ->
      Alcotest.(check bool) "no slo block without a sink" true
        (r.Runner.slo = None))
    reports

(* --- determinism: observability and fault layer are invisible ------------- *)

let test_report_identical_with_obs_on () =
  (* Same seed, metrics + tracing on vs off: the instrumented run must
     produce the exact same report, or the observability layer is
     perturbing the simulation. *)
  let policy = Runner.Adaptive Runner.Efficient in
  let plain = Runner.run ~config:fast_config policy in
  let metrics_were = Rwc_obs.Metrics.enabled () in
  let trace_was = Rwc_obs.Trace.enabled () in
  Rwc_obs.Metrics.enable ();
  Rwc_obs.Trace.enable ();
  let instrumented =
    Fun.protect
      ~finally:(fun () ->
        if not metrics_were then Rwc_obs.Metrics.disable ();
        if not trace_was then Rwc_obs.Trace.disable ();
        Rwc_obs.Trace.reset ())
      (fun () -> Runner.run ~config:fast_config policy)
  in
  Alcotest.(check bool) "reports identical" true (plain = instrumented)

let test_report_identical_with_faults_none () =
  (* `--faults none` vs an explicitly empty plan with a different seed:
     neither arms the injector, so neither may consume any randomness. *)
  let policy = Runner.Adaptive Runner.Stock in
  let a = Runner.run ~config:fast_config policy in
  let b =
    Runner.run
      ~config:
        { fast_config with faults = { Rwc_fault.seed = 12345; rules = [] } }
      policy
  in
  Alcotest.(check bool) "reports identical" true (a = b)

let test_report_identical_with_guard_none () =
  (* The disarmed guard must not perturb the simulation even when the
     fault plan is armed: the collector channels are only queried for
     an armed guard, so the RNG substreams line up exactly. *)
  let policy = Runner.Adaptive Runner.Stock in
  let faulty = { fast_config with faults = Rwc_fault.default } in
  let a = Runner.run ~config:faulty policy in
  let b =
    Runner.run ~config:{ faulty with guard = Rwc_guard.none } policy
  in
  Alcotest.(check bool) "reports identical under faults" true (a = b)

(* --- guard: the safety layer pays for itself under chaos ------------------- *)

let test_guarded_chaos_no_worse () =
  (* The acceptance configuration of the chaos sweep itself: default
     runner config, 7 days, the default fault plan at twice its rates.
     For both BVT procedures the guarded run must not deliver less
     than the unguarded one — the safety layer is allowed to be
     invisible, never a net cost, at paper-like SNR volatility. *)
  let config =
    {
      Runner.default_config with
      days = 7.0;
      faults = Rwc_fault.scaled Rwc_fault.default ~factor:2.0;
    }
  in
  List.iter
    (fun procedure ->
      let policy = Runner.Adaptive procedure in
      let unguarded = Runner.run ~config policy in
      let guarded =
        Runner.run ~config:{ config with guard = Rwc_guard.default } policy
      in
      (match guarded.Runner.guard_stats with
      | None -> Alcotest.fail "armed guard must produce guard stats"
      | Some _ -> ());
      Alcotest.(check bool) "unguarded run has no guard block" true
        (unguarded.Runner.guard_stats = None);
      Alcotest.(check bool)
        (Printf.sprintf "%s: guarded %.2f >= unguarded %.2f Pbit"
           (Runner.policy_name policy) guarded.Runner.delivered_pbit
           unguarded.Runner.delivered_pbit)
        true
        (guarded.Runner.delivered_pbit >= unguarded.Runner.delivered_pbit);
      Alcotest.(check bool) "guard does not hurt availability" true
        (guarded.Runner.duct_availability
        >= unguarded.Runner.duct_availability -. 0.001))
    [ Runner.Stock; Runner.Efficient ]

(* --- chaos: fault counters are consistent end to end ---------------------- *)

let chaos_plan =
  {
    Rwc_fault.seed = 3;
    rules =
      [
        { Rwc_fault.component = Rwc_fault.Bvt_reconfig;
          prob = 0.6; param = 0.0; window = None };
        { Rwc_fault.component = Rwc_fault.Bvt_timeout;
          prob = 0.05; param = 120.0; window = None };
        { Rwc_fault.component = Rwc_fault.Adapt_stuck;
          prob = 0.05; param = 0.0; window = None };
        { Rwc_fault.component = Rwc_fault.Te_delay;
          prob = 0.2; param = 1800.0; window = None };
      ];
  }

let test_chaos_run_consistent () =
  let metrics_were = Rwc_obs.Metrics.enabled () in
  Rwc_obs.Metrics.enable ();
  let m_injected = Rwc_obs.Metrics.counter "fault/injected_total" in
  let m_retries = Rwc_obs.Metrics.counter "orchestrator/retries" in
  let m_fallbacks = Rwc_obs.Metrics.counter "orchestrator/fallbacks" in
  let m_flaps = Rwc_obs.Metrics.counter "sim/flaps" in
  let base_injected = Rwc_obs.Metrics.value m_injected in
  let base_retries = Rwc_obs.Metrics.value m_retries in
  let base_fallbacks = Rwc_obs.Metrics.value m_fallbacks in
  let base_flaps = Rwc_obs.Metrics.value m_flaps in
  let baseline = Runner.run ~config:fast_config (Runner.Adaptive Runner.Efficient) in
  let r =
    Fun.protect
      ~finally:(fun () ->
        if not metrics_were then Rwc_obs.Metrics.disable ())
      (fun () ->
        Runner.run
          ~config:{ fast_config with faults = chaos_plan }
          (Runner.Adaptive Runner.Efficient))
  in
  match r.Runner.fault_stats with
  | None -> Alcotest.fail "armed plan must produce fault stats"
  | Some fs ->
      (* The run completed (no wedge) and actually exercised the fault
         paths at this rate. *)
      Alcotest.(check bool) "faults injected" true (fs.Runner.injected > 0);
      Alcotest.(check bool) "bvt failures" true (fs.Runner.bvt_failures > 0);
      Alcotest.(check bool) "retries happened" true (fs.Runner.retries > 0);
      Alcotest.(check bool) "fallbacks happened" true (fs.Runner.fallbacks > 0);
      (* Report counters and the metric registry tell the same story:
         one source of truth, surfaced twice. *)
      Alcotest.(check int) "injected metric = report"
        fs.Runner.injected
        (Rwc_obs.Metrics.value m_injected - base_injected);
      Alcotest.(check int) "retry metric = report" fs.Runner.retries
        (Rwc_obs.Metrics.value m_retries - base_retries);
      Alcotest.(check int) "fallback metric = report" fs.Runner.fallbacks
        (Rwc_obs.Metrics.value m_fallbacks - base_fallbacks);
      (* Internal consistency: every retry and fallback traces back to
         a BVT failure, and an exhausted link is counted as a flap
         (graceful degradation), never as a duct failure. *)
      Alcotest.(check int) "failures = retries + fallbacks"
        fs.Runner.bvt_failures
        (fs.Runner.retries + fs.Runner.fallbacks);
      Alcotest.(check bool) "fallbacks show up as flaps" true
        (Rwc_obs.Metrics.value m_flaps - base_flaps - baseline.Runner.flaps
         >= fs.Runner.fallbacks);
      Alcotest.(check bool) "degraded links still end somewhere valid" true
        (r.Runner.delivered_pbit > 0.0
        && r.Runner.delivered_pbit <= r.Runner.offered_pbit +. 1e-6)

(* --- orchestrator: quiescence replaces the fixed-horizon heuristic -------- *)

let test_orchestrator_outlives_old_horizon () =
  (* Adversarial seed: with a 0.999 BVT failure rate and heavy backoff
     the retry chains run far past the old `n * (drain + 50 * (mean +
     1)) + 1` heuristic horizon that execute() used before it ran the
     DES to quiescence.  Under the old code this log would have been
     silently truncated mid-plan. *)
  let faults =
    Rwc_fault.compile
      {
        Rwc_fault.seed = 5;
        rules =
          [
            { Rwc_fault.component = Rwc_fault.Bvt_reconfig;
              prob = 0.999; param = 0.0; window = None };
          ];
      }
  in
  let upgrades =
    [
      { Rwc_core.Translate.phys_edge = 0; extra_gbps = 100.0; penalty_paid = 0.0 };
      { Rwc_core.Translate.phys_edge = 3; extra_gbps = 50.0; penalty_paid = 0.0 };
    ]
  in
  let downtime_mean_s = 68.0 and drain_s = 30.0 in
  let retry =
    { Orchestrator.max_attempts = 6; base_s = 600.0; factor = 2.0; cap_s = 3600.0 }
  in
  let o =
    Orchestrator.execute
      ~rng:(Rwc_stats.Rng.create 9)
      ~upgrades
      ~residual_flow:(fun _ -> 1.0)
      ~downtime_mean_s ~drain_s ~faults ~retry ()
  in
  let old_horizon =
    (float_of_int (List.length upgrades)
    *. (drain_s +. (50.0 *. (downtime_mean_s +. 1.0))))
    +. 1.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "duration %.0fs outlives old horizon %.0fs"
       o.Orchestrator.total_duration_s old_horizon)
    true
    (o.Orchestrator.total_duration_s > old_horizon);
  (* Nothing was truncated: every link completed its sequence. *)
  let restored =
    List.filter (fun e -> e.Orchestrator.phase = Orchestrator.Restored)
      o.Orchestrator.log
  in
  Alcotest.(check int) "every link restored" (List.length upgrades)
    (List.length restored);
  Alcotest.(check bool) "fallbacks happened" true (o.Orchestrator.fallbacks > 0);
  Alcotest.(check bool) "retries happened" true (o.Orchestrator.retries > 0);
  (* A fallback restores immediately: the BVT never committed, so the
     pre-upgrade modulation is already live. *)
  let rec check_fallback_pairs = function
    | a :: (b :: _ as rest) ->
        if a.Orchestrator.phase = Orchestrator.Fallback_started then begin
          Alcotest.(check bool) "fallback then restore" true
            (b.Orchestrator.phase = Orchestrator.Restored
            && b.Orchestrator.phys_edge = a.Orchestrator.phys_edge);
          Alcotest.(check (float 1e-9)) "restore is immediate"
            a.Orchestrator.time_s b.Orchestrator.time_s
        end;
        check_fallback_pairs rest
    | _ -> ()
  in
  check_fallback_pairs o.Orchestrator.log;
  (* Attempts are bounded even under a near-certain failure rate. *)
  Alcotest.(check bool) "attempts bounded" true
    (o.Orchestrator.reconfigurations
    <= retry.Orchestrator.max_attempts * List.length upgrades)

let suite =
  [
    Alcotest.test_case "queue ordering" `Quick test_queue_ordering;
    Alcotest.test_case "queue fifo ties" `Quick test_queue_fifo_ties;
    Alcotest.test_case "queue stress" `Quick test_queue_stress_sorted;
    Alcotest.test_case "des chronological" `Quick test_des_runs_in_order;
    Alcotest.test_case "des horizon" `Quick test_des_horizon;
    Alcotest.test_case "des self-scheduling" `Quick test_des_handlers_schedule;
    Alcotest.test_case "des rejects past" `Quick test_des_rejects_past;
    Alcotest.test_case "netstate initial" `Quick test_netstate_initial;
    Alcotest.test_case "netstate graph shape" `Quick test_netstate_graph_shape;
    Alcotest.test_case "netstate down capacity" `Quick test_netstate_down_zero_capacity;
    Alcotest.test_case "netstate headroom" `Quick test_netstate_headroom;
    Alcotest.test_case "runner static-100" `Slow test_runner_static_100_baseline;
    Alcotest.test_case "runner adaptive throughput gain" `Slow
      test_runner_adaptive_beats_static_throughput;
    Alcotest.test_case "runner adaptive availability" `Slow test_runner_adaptive_availability;
    Alcotest.test_case "runner efficient downtime" `Slow test_runner_efficient_less_downtime;
    Alcotest.test_case "runner offered bounds" `Slow test_runner_offered_bounds_delivered;
    Alcotest.test_case "runner deterministic" `Slow test_runner_deterministic;
    Alcotest.test_case "golden pp faults-off" `Slow test_golden_pp_byte_identical;
    Alcotest.test_case "golden json faults-off" `Slow test_golden_json_byte_identical;
    Alcotest.test_case "golden guard-none" `Slow
      test_golden_guard_none_byte_identical;
    Alcotest.test_case "golden journal-off" `Slow
      test_golden_journal_off_byte_identical;
    Alcotest.test_case "report identical with obs on" `Slow
      test_report_identical_with_obs_on;
    Alcotest.test_case "report identical with faults none" `Slow
      test_report_identical_with_faults_none;
    Alcotest.test_case "report identical with guard none" `Slow
      test_report_identical_with_guard_none;
    Alcotest.test_case "guarded chaos no worse" `Slow
      test_guarded_chaos_no_worse;
    Alcotest.test_case "chaos counters consistent" `Slow test_chaos_run_consistent;
    Alcotest.test_case "orchestrator outlives old horizon" `Quick
      test_orchestrator_outlives_old_horizon;
  ]

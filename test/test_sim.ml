open Rwc_sim

(* --- event queue ------------------------------------------------------ *)

let test_queue_ordering () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:3.0 "c";
  Event_queue.add q ~time:1.0 "a";
  Event_queue.add q ~time:2.0 "b";
  let order = List.init 3 (fun _ -> Event_queue.pop q) in
  Alcotest.(check bool) "sorted" true
    (order = [ Some (1.0, "a"); Some (2.0, "b"); Some (3.0, "c") ]);
  Alcotest.(check bool) "drained" true (Event_queue.pop q = None)

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:1.0 "first";
  Event_queue.add q ~time:1.0 "second";
  Event_queue.add q ~time:1.0 "third";
  let labels =
    List.init 3 (fun _ ->
        match Event_queue.pop q with Some (_, l) -> l | None -> "?")
  in
  Alcotest.(check (list string)) "insertion order on ties"
    [ "first"; "second"; "third" ] labels

let test_queue_stress_sorted () =
  let rng = Rwc_stats.Rng.create 5 in
  let q = Event_queue.create () in
  for i = 1 to 1000 do
    Event_queue.add q ~time:(Rwc_stats.Rng.float rng) i
  done;
  Alcotest.(check int) "size" 1000 (Event_queue.size q);
  let last = ref neg_infinity in
  for _ = 1 to 1000 do
    match Event_queue.pop q with
    | Some (t, _) ->
        Alcotest.(check bool) "non-decreasing" true (t >= !last);
        last := t
    | None -> Alcotest.fail "premature drain"
  done

(* --- des --------------------------------------------------------------- *)

let test_des_runs_in_order () =
  let engine = Des.create () in
  let log = ref [] in
  Des.schedule engine ~at:5.0 (fun _ -> log := 5 :: !log);
  Des.schedule engine ~at:1.0 (fun _ -> log := 1 :: !log);
  Des.schedule engine ~at:3.0 (fun _ -> log := 3 :: !log);
  Des.run engine ~until:10.0;
  Alcotest.(check (list int)) "chronological" [ 1; 3; 5 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at horizon" 10.0 (Des.now engine)

let test_des_horizon () =
  let engine = Des.create () in
  let fired = ref false in
  Des.schedule engine ~at:20.0 (fun _ -> fired := true);
  Des.run engine ~until:10.0;
  Alcotest.(check bool) "beyond horizon pends" false !fired;
  Alcotest.(check int) "still pending" 1 (Des.pending engine)

let test_des_handlers_schedule () =
  let engine = Des.create () in
  let count = ref 0 in
  let rec tick e =
    incr count;
    if Des.now e < 4.5 then Des.schedule_in e ~after:1.0 tick
  in
  Des.schedule engine ~at:0.0 tick;
  Des.run engine ~until:10.0;
  Alcotest.(check int) "self-scheduling chain" 6 !count

let test_des_rejects_past () =
  let engine = Des.create () in
  Des.schedule engine ~at:5.0 (fun e ->
      Alcotest.check_raises "no time travel"
        (Invalid_argument "Des.schedule: event in the past") (fun () ->
          Des.schedule e ~at:1.0 (fun _ -> ())));
  Des.run engine ~until:10.0

(* --- netstate ------------------------------------------------------------ *)

let backbone = Rwc_topology.Backbone.north_america

let test_netstate_initial () =
  let net = Netstate.make ~seed:3 backbone in
  Alcotest.(check int) "one state per duct"
    (Array.length backbone.Rwc_topology.Backbone.ducts)
    (Array.length net.Netstate.ducts);
  Array.iter
    (fun d ->
      Alcotest.(check bool) "up" true d.Netstate.up;
      Alcotest.(check int) "100G default" 100 d.Netstate.per_lambda_gbps;
      Alcotest.(check (float 1e-9)) "4 lambdas x 100G" 400.0 (Netstate.capacity_gbps d))
    net.Netstate.ducts

let test_netstate_graph_shape () =
  let net = Netstate.make ~seed:3 backbone in
  let g = Netstate.graph net in
  Alcotest.(check int) "two directed edges per duct"
    (2 * Array.length backbone.Rwc_topology.Backbone.ducts)
    (Rwc_flow.Graph.n_edges g);
  Alcotest.(check int) "city vertices"
    (Rwc_topology.Backbone.n_cities backbone)
    (Rwc_flow.Graph.n_vertices g)

let test_netstate_down_zero_capacity () =
  let net = Netstate.make ~seed:3 backbone in
  let d = net.Netstate.ducts.(0) in
  d.Netstate.up <- false;
  Alcotest.(check (float 1e-9)) "down = 0" 0.0 (Netstate.capacity_gbps d);
  let g = Netstate.graph net in
  Alcotest.(check (float 1e-9)) "edge reflects down" 0.0
    (Rwc_flow.Graph.edge g 0).Rwc_flow.Graph.capacity

let test_netstate_headroom () =
  let net = Netstate.make ~seed:3 backbone in
  let d = net.Netstate.ducts.(0) in
  d.Netstate.current_snr_db <- 20.0;
  (* 200G feasible, configured at 100: headroom = 4 x 100. *)
  Alcotest.(check (float 1e-9)) "headroom" 400.0 (Netstate.headroom d);
  d.Netstate.current_snr_db <- 7.0;
  Alcotest.(check (float 1e-9)) "no headroom below 125 threshold" 0.0
    (Netstate.headroom d)

(* --- runner (integration) -------------------------------------------------- *)

let fast_config =
  (* Offered load deliberately exceeds the static-100G network (130%)
     so the throughput comparison exercises the capacity headroom: a
     fully-served network would show no gain by construction. *)
  {
    Runner.days = 5.0;
    te_interval_h = 12.0;
    seed = 11;
    wavelengths = 4;
    demand_fraction = 1.3;
    top_demands = 20;
    epsilon = 0.2;
  }

let reports = lazy (Runner.compare_policies ~config:fast_config ())

let find policy =
  List.find (fun r -> r.Runner.policy = policy) (Lazy.force reports)

let test_runner_static_100_baseline () =
  let r = find Runner.Static_100 in
  Alcotest.(check bool) "delivers something" true (r.Runner.delivered_pbit > 0.0);
  Alcotest.(check int) "no reconfigurations" 0 r.Runner.reconfigurations;
  Alcotest.(check bool) "availability high" true (r.Runner.duct_availability > 0.95)

let test_runner_adaptive_beats_static_throughput () =
  let s = find Runner.Static_100 in
  let a = find (Runner.Adaptive Runner.Efficient) in
  (* The paper's claim: 75-100% capacity gain from adapting to SNR. *)
  let gain = a.Runner.avg_throughput_gbps /. s.Runner.avg_throughput_gbps in
  Alcotest.(check bool)
    (Printf.sprintf "gain %.2fx in [1.3, 2.3]" gain)
    true
    (gain > 1.3 && gain < 2.3)

let test_runner_adaptive_availability () =
  let m = find Runner.Static_max in
  let a = find (Runner.Adaptive Runner.Efficient) in
  Alcotest.(check bool) "adaptive >= static-max availability" true
    (a.Runner.duct_availability >= m.Runner.duct_availability -. 1e-9);
  Alcotest.(check bool) "adaptive has no more failures" true
    (a.Runner.failures <= m.Runner.failures)

let test_runner_efficient_less_downtime () =
  let stock = find (Runner.Adaptive Runner.Stock) in
  let eff = find (Runner.Adaptive Runner.Efficient) in
  Alcotest.(check bool) "orders of magnitude less downtime" true
    (eff.Runner.reconfig_downtime_s < stock.Runner.reconfig_downtime_s /. 100.0
    || stock.Runner.reconfigurations = 0)

let test_runner_offered_bounds_delivered () =
  List.iter
    (fun r ->
      Alcotest.(check bool) "delivered <= offered" true
        (r.Runner.delivered_pbit <= r.Runner.offered_pbit +. 1e-6))
    (Lazy.force reports)

let test_runner_deterministic () =
  let a = Runner.run ~config:fast_config Runner.Static_100 in
  let b = Runner.run ~config:fast_config Runner.Static_100 in
  Alcotest.(check (float 1e-9)) "same delivered" a.Runner.delivered_pbit
    b.Runner.delivered_pbit;
  Alcotest.(check int) "same failures" a.Runner.failures b.Runner.failures

let suite =
  [
    Alcotest.test_case "queue ordering" `Quick test_queue_ordering;
    Alcotest.test_case "queue fifo ties" `Quick test_queue_fifo_ties;
    Alcotest.test_case "queue stress" `Quick test_queue_stress_sorted;
    Alcotest.test_case "des chronological" `Quick test_des_runs_in_order;
    Alcotest.test_case "des horizon" `Quick test_des_horizon;
    Alcotest.test_case "des self-scheduling" `Quick test_des_handlers_schedule;
    Alcotest.test_case "des rejects past" `Quick test_des_rejects_past;
    Alcotest.test_case "netstate initial" `Quick test_netstate_initial;
    Alcotest.test_case "netstate graph shape" `Quick test_netstate_graph_shape;
    Alcotest.test_case "netstate down capacity" `Quick test_netstate_down_zero_capacity;
    Alcotest.test_case "netstate headroom" `Quick test_netstate_headroom;
    Alcotest.test_case "runner static-100" `Slow test_runner_static_100_baseline;
    Alcotest.test_case "runner adaptive throughput gain" `Slow
      test_runner_adaptive_beats_static_throughput;
    Alcotest.test_case "runner adaptive availability" `Slow test_runner_adaptive_availability;
    Alcotest.test_case "runner efficient downtime" `Slow test_runner_efficient_less_downtime;
    Alcotest.test_case "runner offered bounds" `Slow test_runner_offered_bounds_delivered;
    Alcotest.test_case "runner deterministic" `Slow test_runner_deterministic;
  ]

open Rwc_telemetry

(* A quiet trace at baseline 15 with sigma 0.3, a -2 dB shift injected
   at sample 500. *)
let shifted_trace ?(shift = -2.0) ?(at = 500) ?(n = 1000) seed =
  let rng = Rwc_stats.Rng.create seed in
  Array.init n (fun i ->
      let mu = if i >= at then 15.0 +. shift else 15.0 in
      Rwc_stats.Rng.gaussian rng ~mu ~sigma:0.3)

let test_ewma_quiet_no_alarm () =
  let trace = shifted_trace ~shift:0.0 1 in
  let d = Detect.Ewma.create ~baseline_db:15.0 ~sigma_db:0.3 () in
  let alarms = Array.fold_left (fun acc x -> if Detect.Ewma.observe d x then acc + 1 else acc) 0 trace in
  Alcotest.(check int) "silent on a quiet link" 0 alarms

let test_ewma_detects_shift () =
  let trace = shifted_trace 2 in
  let d = Detect.Ewma.create ~baseline_db:15.0 ~sigma_db:0.3 () in
  let first = ref None in
  Array.iteri
    (fun i x ->
      if Detect.Ewma.observe d x && !first = None then first := Some i)
    trace;
  match !first with
  | None -> Alcotest.fail "missed a 6.7-sigma shift"
  | Some i ->
      Alcotest.(check bool)
        (Printf.sprintf "fires shortly after onset (sample %d)" i)
        true
        (i >= 500 && i < 520)

let test_ewma_level_tracks () =
  let d = Detect.Ewma.create ~alpha:0.5 ~baseline_db:10.0 ~sigma_db:0.5 () in
  ignore (Detect.Ewma.observe d 8.0);
  Alcotest.(check (float 1e-9)) "level after one sample" 9.0 (Detect.Ewma.level d)

let test_cusum_quiet_no_alarm () =
  let trace = shifted_trace ~shift:0.0 3 in
  let d = Detect.Cusum.create ~baseline_db:15.0 ~sigma_db:0.3 () in
  let alarms = Array.fold_left (fun acc x -> if Detect.Cusum.observe d x then acc + 1 else acc) 0 trace in
  Alcotest.(check int) "silent on a quiet link" 0 alarms

let test_cusum_detects_and_resets () =
  let trace = shifted_trace 4 in
  let d = Detect.Cusum.create ~baseline_db:15.0 ~sigma_db:0.3 () in
  let first = ref None in
  Array.iteri
    (fun i x ->
      if Detect.Cusum.observe d x && !first = None then begin
        first := Some i;
        Alcotest.(check (float 1e-9)) "statistic reset on alarm" 0.0
          (Detect.Cusum.statistic d)
      end)
    trace;
  match !first with
  | None -> Alcotest.fail "missed the shift"
  | Some i -> Alcotest.(check bool) "fires quickly" true (i >= 500 && i < 510)

let test_cusum_ignores_upward () =
  let trace = shifted_trace ~shift:3.0 5 in
  let d = Detect.Cusum.create ~baseline_db:15.0 ~sigma_db:0.3 () in
  let alarms = Array.fold_left (fun acc x -> if Detect.Cusum.observe d x then acc + 1 else acc) 0 trace in
  Alcotest.(check int) "upward shifts are harmless" 0 alarms

let test_scan_orders_alarms () =
  let trace = shifted_trace 6 in
  let alarms = Detect.scan ~baseline_db:15.0 ~sigma_db:0.3 trace in
  Alcotest.(check bool) "found some" true (alarms <> []);
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "time order" true
          (b.Detect.sample >= a.Detect.sample);
        sorted rest
    | _ -> ()
  in
  sorted alarms;
  (* Both detector kinds fire on a persistent 2 dB drop. *)
  let kinds = List.sort_uniq compare (List.map (fun a -> a.Detect.kind) alarms) in
  Alcotest.(check int) "both detectors" 2 (List.length kinds)

let test_detection_delay () =
  let trace = shifted_trace 7 in
  let alarms = Detect.scan ~baseline_db:15.0 ~sigma_db:0.3 trace in
  match Detect.detection_delay alarms ~event_start:500 with
  | None -> Alcotest.fail "no alarm after onset"
  | Some d ->
      Alcotest.(check bool)
        (Printf.sprintf "delay %d samples (< 2.5 h)" d)
        true (d >= 0 && d < 10)

let test_detection_delay_none () =
  Alcotest.(check bool) "no alarms" true
    (Detect.detection_delay [] ~event_start:0 = None)

let test_early_warning_beats_threshold () =
  (* The operational motivation: a slow drift from 15 dB toward the
     12.5 dB 200G threshold is flagged by CUSUM long before the link
     would flap. *)
  let rng = Rwc_stats.Rng.create 8 in
  let n = 2000 in
  let trace =
    Array.init n (fun i ->
        let drift = -3.0 *. float_of_int i /. float_of_int n in
        Rwc_stats.Rng.gaussian rng ~mu:(15.0 +. drift) ~sigma:0.3)
  in
  let alarms = Detect.scan ~baseline_db:15.0 ~sigma_db:0.3 trace in
  let first_alarm =
    match alarms with a :: _ -> a.Detect.sample | [] -> max_int
  in
  (* When does the SNR actually cross 12.5? Drift hits -2.5 dB at
     sample ~1667. *)
  let crossing = ref n in
  Array.iteri (fun i x -> if x < 12.5 && !crossing = n then crossing := i) trace;
  Alcotest.(check bool)
    (Printf.sprintf "alarm at %d well before crossing at %d" first_alarm !crossing)
    true
    (first_alarm < !crossing - 200)

let suite =
  [
    Alcotest.test_case "ewma quiet" `Quick test_ewma_quiet_no_alarm;
    Alcotest.test_case "ewma detects shift" `Quick test_ewma_detects_shift;
    Alcotest.test_case "ewma level" `Quick test_ewma_level_tracks;
    Alcotest.test_case "cusum quiet" `Quick test_cusum_quiet_no_alarm;
    Alcotest.test_case "cusum detects and resets" `Quick test_cusum_detects_and_resets;
    Alcotest.test_case "cusum ignores upward" `Quick test_cusum_ignores_upward;
    Alcotest.test_case "scan orders alarms" `Quick test_scan_orders_alarms;
    Alcotest.test_case "detection delay" `Quick test_detection_delay;
    Alcotest.test_case "detection delay none" `Quick test_detection_delay_none;
    Alcotest.test_case "early warning beats threshold" `Quick
      test_early_warning_beats_threshold;
  ]

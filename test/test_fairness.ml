open Rwc_core
module Graph = Rwc_flow.Graph

(* Line topology 0 -> 1 -> 2 with a 30-capacity bottleneck 0->1. *)
let line () =
  let g = Graph.create ~n:3 in
  let e01 = Graph.add_edge g ~src:0 ~dst:1 ~capacity:30.0 ~cost:0.0 () in
  let e12 = Graph.add_edge g ~src:1 ~dst:2 ~capacity:100.0 ~cost:0.0 () in
  (g, e01, e12)

let test_equal_split () =
  let g, e01, _ = line () in
  let flows =
    [
      { Fairness.path = [ e01 ]; demand = 100.0 };
      { Fairness.path = [ e01 ]; demand = 100.0 };
      { Fairness.path = [ e01 ]; demand = 100.0 };
    ]
  in
  let a = Fairness.allocate g flows in
  Array.iter
    (fun r -> Alcotest.(check (float 1e-6)) "10 each" 10.0 r)
    a.Fairness.rates;
  Array.iter
    (fun b -> Alcotest.(check bool) "bottlenecked on e01" true (b = Some e01))
    a.Fairness.bottleneck;
  Alcotest.(check bool) "verifier agrees" true (Fairness.is_max_min_fair g flows a)

let test_small_demand_released () =
  (* The classic: one small flow takes its demand, the rest split the
     remainder evenly. *)
  let g, e01, _ = line () in
  let flows =
    [
      { Fairness.path = [ e01 ]; demand = 4.0 };
      { Fairness.path = [ e01 ]; demand = 100.0 };
      { Fairness.path = [ e01 ]; demand = 100.0 };
    ]
  in
  let a = Fairness.allocate g flows in
  Alcotest.(check (float 1e-6)) "small gets demand" 4.0 a.Fairness.rates.(0);
  Alcotest.(check (float 1e-6)) "big splits remainder" 13.0 a.Fairness.rates.(1);
  Alcotest.(check (float 1e-6)) "big splits remainder" 13.0 a.Fairness.rates.(2);
  Alcotest.(check bool) "small capped by demand" true
    (a.Fairness.bottleneck.(0) = None);
  Alcotest.(check bool) "verifier agrees" true (Fairness.is_max_min_fair g flows a)

let test_multi_bottleneck () =
  (* Two-hop flow shares each hop with a one-hop flow; capacities 30
     and 20: the classic multi-bottleneck instance. *)
  let g, e01, e12 = line () in
  ignore e12;
  let g2 = Graph.create ~n:3 in
  let a01 = Graph.add_edge g2 ~src:0 ~dst:1 ~capacity:30.0 ~cost:0.0 () in
  let a12 = Graph.add_edge g2 ~src:1 ~dst:2 ~capacity:20.0 ~cost:0.0 () in
  let flows =
    [
      { Fairness.path = [ a01; a12 ]; demand = 100.0 };  (* long *)
      { Fairness.path = [ a01 ]; demand = 100.0 };  (* hop 1 *)
      { Fairness.path = [ a12 ]; demand = 100.0 };  (* hop 2 *)
    ]
  in
  let a = Fairness.allocate g2 flows in
  (* Long flow and hop-2 flow split the 20-edge at 10 each; hop-1 flow
     then grows to 30 - 10 = 20 on the 30-edge. *)
  Alcotest.(check (float 1e-6)) "long flow" 10.0 a.Fairness.rates.(0);
  Alcotest.(check (float 1e-6)) "hop-1 flow" 20.0 a.Fairness.rates.(1);
  Alcotest.(check (float 1e-6)) "hop-2 flow" 10.0 a.Fairness.rates.(2);
  Alcotest.(check bool) "verifier agrees" true
    (Fairness.is_max_min_fair g2 flows a);
  ignore (g, e01)

let test_no_flows () =
  let g, _, _ = line () in
  let a = Fairness.allocate g [] in
  Alcotest.(check int) "empty" 0 (Array.length a.Fairness.rates)

let prop_max_min_fair_on_random_instances =
  let gen =
    QCheck.Gen.(
      let* n = int_range 3 6 in
      let* m = int_range 3 10 in
      let* edges =
        list_repeat m
          (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 5 40))
      in
      let* k = int_range 1 5 in
      let* picks = list_repeat k (pair (int_range 0 1000) (int_range 1 60)) in
      return (n, edges, picks))
  in
  QCheck.Test.make ~count:200 ~name:"fairness: allocation is max-min fair"
    (QCheck.make
       ~print:(fun (n, e, p) ->
         Printf.sprintf "n=%d m=%d k=%d" n (List.length e) (List.length p))
       gen)
    (fun (n, edges, picks) ->
      let g = Graph.create ~n in
      List.iter
        (fun (s, d, c) ->
          if s <> d then
            ignore
              (Graph.add_edge g ~src:s ~dst:d ~capacity:(float_of_int c)
                 ~cost:1.0 ()))
        edges;
      if Graph.n_edges g = 0 then true
      else begin
        (* Random flows over shortest paths between random reachable
           pairs. *)
        let flows =
          List.filter_map
            (fun (seed, demand) ->
              let src = seed mod n and dst = (seed / 7) mod n in
              if src = dst then None
              else
                match Rwc_flow.Shortest.dijkstra g ~src ~dst with
                | Some path when path <> [] ->
                    Some { Fairness.path; demand = float_of_int demand }
                | Some _ | None -> None)
            picks
        in
        if flows = [] then true
        else
          let a = Fairness.allocate g flows in
          Fairness.is_max_min_fair g flows a
      end)

let suite =
  [
    Alcotest.test_case "equal split" `Quick test_equal_split;
    Alcotest.test_case "small demand released" `Quick test_small_demand_released;
    Alcotest.test_case "multi bottleneck" `Quick test_multi_bottleneck;
    Alcotest.test_case "no flows" `Quick test_no_flows;
    QCheck_alcotest.to_alcotest prop_max_min_fair_on_random_instances;
  ]

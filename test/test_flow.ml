open Rwc_flow

(* --- helpers ------------------------------------------------------- *)

let diamond () =
  (* 0 -> 1 -> 3 and 0 -> 2 -> 3, plus a cross edge 1 -> 2. *)
  let g = Graph.create ~n:4 in
  let e01 = Graph.add_edge g ~src:0 ~dst:1 ~capacity:10.0 ~cost:1.0 () in
  let e02 = Graph.add_edge g ~src:0 ~dst:2 ~capacity:5.0 ~cost:1.0 () in
  let e13 = Graph.add_edge g ~src:1 ~dst:3 ~capacity:7.0 ~cost:1.0 () in
  let e23 = Graph.add_edge g ~src:2 ~dst:3 ~capacity:8.0 ~cost:1.0 () in
  let e12 = Graph.add_edge g ~src:1 ~dst:2 ~capacity:4.0 ~cost:1.0 () in
  (g, (e01, e02, e13, e23, e12))

let check_conservation g ~src ~dst flow =
  let n = Graph.n_vertices g in
  let balance = Array.make n 0.0 in
  Graph.iter_edges
    (fun e ->
      balance.(e.Graph.src) <- balance.(e.Graph.src) -. flow.(e.Graph.id);
      balance.(e.Graph.dst) <- balance.(e.Graph.dst) +. flow.(e.Graph.id))
    g;
  for v = 0 to n - 1 do
    if v <> src && v <> dst then
      if Float.abs balance.(v) > 1e-6 then
        Alcotest.failf "conservation violated at %d: %f" v balance.(v)
  done

let check_capacities g flow =
  Graph.iter_edges
    (fun e ->
      if flow.(e.Graph.id) > e.Graph.capacity +. 1e-6 then
        Alcotest.failf "capacity violated on edge %d" e.Graph.id;
      if flow.(e.Graph.id) < -1e-6 then
        Alcotest.failf "negative flow on edge %d" e.Graph.id)
    g

(* --- graph --------------------------------------------------------- *)

let test_graph_basics () =
  let g, (e01, _, _, _, _) = diamond () in
  Alcotest.(check int) "vertices" 4 (Graph.n_vertices g);
  Alcotest.(check int) "edges" 5 (Graph.n_edges g);
  let e = Graph.edge g e01 in
  Alcotest.(check int) "src" 0 e.Graph.src;
  Alcotest.(check int) "dst" 1 e.Graph.dst;
  Alcotest.(check (float 1e-9)) "cap" 10.0 e.Graph.capacity;
  Alcotest.(check (list int)) "out 0" [ 0; 1 ] (Graph.out_edges g 0);
  Alcotest.(check (list int)) "in 3" [ 2; 3 ] (Graph.in_edges g 3)

let test_graph_parallel_edges () =
  let g = Graph.create ~n:2 in
  let a = Graph.add_edge g ~src:0 ~dst:1 ~capacity:1.0 ~cost:0.0 "real" in
  let b = Graph.add_edge g ~src:0 ~dst:1 ~capacity:2.0 ~cost:5.0 "fake" in
  Alcotest.(check bool) "distinct ids" true (a <> b);
  Alcotest.(check string) "tag a" "real" (Graph.edge g a).Graph.tag;
  Alcotest.(check string) "tag b" "fake" (Graph.edge g b).Graph.tag;
  Alcotest.(check int) "both leave 0" 2 (List.length (Graph.out_edges g 0))

let test_graph_filter () =
  let g, _ = diamond () in
  let g' = Graph.filter g (fun e -> e.Graph.capacity > 5.0) in
  Alcotest.(check int) "kept" 3 (Graph.n_edges g');
  Alcotest.(check int) "vertices preserved" 4 (Graph.n_vertices g')

let test_graph_map_edges () =
  let g, _ = diamond () in
  let g' = Graph.map_edges g (fun e -> (e.Graph.capacity *. 2.0, 9.0, e.Graph.tag)) in
  Graph.iter_edges
    (fun e -> Alcotest.(check (float 1e-9)) "cost set" 9.0 e.Graph.cost)
    g';
  Alcotest.(check (float 1e-9)) "cap doubled" 20.0 (Graph.edge g' 0).Graph.capacity

(* --- max flow ------------------------------------------------------ *)

let test_maxflow_diamond () =
  let g, _ = diamond () in
  let r = Maxflow.solve g ~src:0 ~dst:3 in
  (* Cut {0}: 15; cut {3}: 15; actual bottleneck: e13 + e23 = 15 but
     e01=10 feeds e13(7)+e12(4), e02=5 feeds e23; max is 7+4+5 capped by
     e23=8: flow = 7 + min(8, 5+4) = 15.  Known answer: 15. *)
  Alcotest.(check (float 1e-6)) "value" 15.0 r.Maxflow.value;
  check_conservation g ~src:0 ~dst:3 r.Maxflow.flow;
  check_capacities g r.Maxflow.flow

let test_maxflow_disconnected () =
  let g = Graph.create ~n:3 in
  let _ = Graph.add_edge g ~src:0 ~dst:1 ~capacity:5.0 ~cost:0.0 () in
  let r = Maxflow.solve g ~src:0 ~dst:2 in
  Alcotest.(check (float 1e-9)) "no path" 0.0 r.Maxflow.value

let test_maxflow_single_edge () =
  let g = Graph.create ~n:2 in
  let _ = Graph.add_edge g ~src:0 ~dst:1 ~capacity:3.5 ~cost:0.0 () in
  let r = Maxflow.solve g ~src:0 ~dst:1 in
  Alcotest.(check (float 1e-9)) "value" 3.5 r.Maxflow.value

let test_maxflow_parallel () =
  let g = Graph.create ~n:2 in
  let _ = Graph.add_edge g ~src:0 ~dst:1 ~capacity:3.0 ~cost:0.0 () in
  let _ = Graph.add_edge g ~src:0 ~dst:1 ~capacity:4.0 ~cost:0.0 () in
  let r = Maxflow.solve g ~src:0 ~dst:1 in
  Alcotest.(check (float 1e-9)) "parallel edges sum" 7.0 r.Maxflow.value

let test_maxflow_zero_capacity () =
  let g = Graph.create ~n:2 in
  let _ = Graph.add_edge g ~src:0 ~dst:1 ~capacity:0.0 ~cost:0.0 () in
  let r = Maxflow.solve g ~src:0 ~dst:1 in
  Alcotest.(check (float 1e-9)) "zero" 0.0 r.Maxflow.value

let test_min_cut_matches_value () =
  let g, _ = diamond () in
  let r = Maxflow.solve g ~src:0 ~dst:3 in
  let side = Maxflow.min_cut g ~src:0 ~dst:3 r in
  Alcotest.(check bool) "src in cut" true side.(0);
  Alcotest.(check bool) "dst not in cut" false side.(3);
  let cut_cap =
    Graph.fold_edges
      (fun acc e ->
        if side.(e.Graph.src) && not side.(e.Graph.dst) then
          acc +. e.Graph.capacity
        else acc)
      0.0 g
  in
  Alcotest.(check (float 1e-6)) "cut capacity = flow value" r.Maxflow.value cut_cap

(* --- min cost ------------------------------------------------------ *)

let test_mincost_prefers_cheap_path () =
  let g = Graph.create ~n:3 in
  let cheap = Graph.add_edge g ~src:0 ~dst:2 ~capacity:5.0 ~cost:1.0 () in
  let _via1 = Graph.add_edge g ~src:0 ~dst:1 ~capacity:5.0 ~cost:10.0 () in
  let _via2 = Graph.add_edge g ~src:1 ~dst:2 ~capacity:5.0 ~cost:10.0 () in
  let r = Mincost.solve g ~src:0 ~dst:2 ~limit:5.0 in
  Alcotest.(check (float 1e-6)) "value" 5.0 r.Mincost.value;
  Alcotest.(check (float 1e-6)) "all on cheap edge" 5.0 r.Mincost.flow.(cheap);
  Alcotest.(check (float 1e-6)) "cost" 5.0 r.Mincost.cost

let test_mincost_limit () =
  let g, _ = diamond () in
  let r = Mincost.solve g ~src:0 ~dst:3 ~limit:6.0 in
  Alcotest.(check (float 1e-6)) "limited value" 6.0 r.Mincost.value;
  check_conservation g ~src:0 ~dst:3 r.Mincost.flow;
  check_capacities g r.Mincost.flow

let test_mincost_value_equals_maxflow () =
  let g, _ = diamond () in
  let mf = Maxflow.solve g ~src:0 ~dst:3 in
  let mc = Mincost.solve g ~src:0 ~dst:3 in
  Alcotest.(check (float 1e-6)) "same value" mf.Maxflow.value mc.Mincost.value

let test_mincost_spills_to_expensive () =
  (* Cheap path saturates; remainder must take the expensive one. *)
  let g = Graph.create ~n:2 in
  let cheap = Graph.add_edge g ~src:0 ~dst:1 ~capacity:3.0 ~cost:1.0 () in
  let dear = Graph.add_edge g ~src:0 ~dst:1 ~capacity:10.0 ~cost:4.0 () in
  let r = Mincost.solve g ~src:0 ~dst:1 ~limit:8.0 in
  Alcotest.(check (float 1e-6)) "cheap full" 3.0 r.Mincost.flow.(cheap);
  Alcotest.(check (float 1e-6)) "dear remainder" 5.0 r.Mincost.flow.(dear);
  Alcotest.(check (float 1e-6)) "cost 3*1+5*4" 23.0 r.Mincost.cost

let test_cycle_cancel_agrees_diamond () =
  let g, _ = diamond () in
  let a = Mincost.solve g ~src:0 ~dst:3 in
  let b = Cycle_cancel.solve g ~src:0 ~dst:3 in
  Alcotest.(check (float 1e-6)) "value" a.Mincost.value b.Mincost.value;
  Alcotest.(check (float 1e-5)) "cost" a.Mincost.cost b.Mincost.cost

(* --- shortest paths ------------------------------------------------ *)

let test_dijkstra_shortest () =
  let g, (e01, e02, e13, e23, _) = diamond () in
  ignore (e02, e23);
  match Shortest.dijkstra g ~src:0 ~dst:3 with
  | None -> Alcotest.fail "expected a path"
  | Some p ->
      Alcotest.(check int) "two hops" 2 (List.length p);
      Alcotest.(check (float 1e-9)) "cost 2" 2.0 (Shortest.path_cost g p);
      Alcotest.(check bool) "starts at src" true
        (List.hd p = e01 || List.hd p = e02);
      ignore (e13)

let test_dijkstra_unreachable () =
  let g = Graph.create ~n:2 in
  Alcotest.(check bool) "none" true (Shortest.dijkstra g ~src:0 ~dst:1 = None)

let test_dijkstra_respects_usable () =
  let g = Graph.create ~n:3 in
  let direct = Graph.add_edge g ~src:0 ~dst:2 ~capacity:1.0 ~cost:1.0 () in
  let _a = Graph.add_edge g ~src:0 ~dst:1 ~capacity:1.0 ~cost:1.0 () in
  let _b = Graph.add_edge g ~src:1 ~dst:2 ~capacity:1.0 ~cost:1.0 () in
  match Shortest.dijkstra ~usable:(fun e -> e <> direct) g ~src:0 ~dst:2 with
  | None -> Alcotest.fail "detour exists"
  | Some p -> Alcotest.(check int) "takes detour" 2 (List.length p)

let test_bellman_ford_matches_dijkstra () =
  let g, _ = diamond () in
  let dist = Shortest.bellman_ford g ~src:0 in
  Alcotest.(check (float 1e-9)) "dist to 3" 2.0 dist.(3);
  Alcotest.(check (float 1e-9)) "dist to 0" 0.0 dist.(0)

let test_bellman_ford_negative_edge () =
  let g = Graph.create ~n:3 in
  let _ = Graph.add_edge g ~src:0 ~dst:1 ~capacity:1.0 ~cost:5.0 () in
  let _ = Graph.add_edge g ~src:1 ~dst:2 ~capacity:1.0 ~cost:(-3.0) () in
  let dist = Shortest.bellman_ford g ~src:0 in
  Alcotest.(check (float 1e-9)) "negative edge ok" 2.0 dist.(2)

let test_bellman_ford_negative_cycle () =
  let g = Graph.create ~n:2 in
  let _ = Graph.add_edge g ~src:0 ~dst:1 ~capacity:1.0 ~cost:(-1.0) () in
  let _ = Graph.add_edge g ~src:1 ~dst:0 ~capacity:1.0 ~cost:(-1.0) () in
  Alcotest.check_raises "detects cycle"
    (Invalid_argument "Shortest.bellman_ford: negative-cost cycle")
    (fun () -> ignore (Shortest.bellman_ford g ~src:0))

let test_yen_k_shortest () =
  let g, _ = diamond () in
  let paths = Shortest.k_shortest g ~src:0 ~dst:3 ~k:3 in
  Alcotest.(check int) "three loopless paths" 3 (List.length paths);
  let costs = List.map (Shortest.path_cost g) paths in
  Alcotest.(check (list (float 1e-9))) "sorted costs" [ 2.0; 2.0; 3.0 ] costs;
  (* All paths distinct. *)
  let distinct = List.sort_uniq compare paths in
  Alcotest.(check int) "distinct" 3 (List.length distinct)

let test_yen_k_larger_than_paths () =
  let g = Graph.create ~n:2 in
  let _ = Graph.add_edge g ~src:0 ~dst:1 ~capacity:1.0 ~cost:1.0 () in
  let paths = Shortest.k_shortest g ~src:0 ~dst:1 ~k:5 in
  Alcotest.(check int) "only one exists" 1 (List.length paths)

(* --- decompose ------------------------------------------------------ *)

let test_decompose_total () =
  let g, _ = diamond () in
  let r = Maxflow.solve g ~src:0 ~dst:3 in
  let wps = Decompose.paths g ~src:0 ~dst:3 r.Maxflow.flow in
  Alcotest.(check (float 1e-5)) "amounts sum to value" r.Maxflow.value
    (Decompose.value wps);
  List.iter
    (fun wp ->
      let p = wp.Decompose.path in
      (* Path is connected and starts/ends correctly. *)
      let first = Graph.edge g (List.hd p) in
      Alcotest.(check int) "starts at src" 0 first.Graph.src;
      let rec walk = function
        | [ last ] ->
            Alcotest.(check int) "ends at dst" 3 (Graph.edge g last).Graph.dst
        | a :: (b :: _ as rest) ->
            Alcotest.(check int) "connected"
              (Graph.edge g a).Graph.dst (Graph.edge g b).Graph.src;
            walk rest
        | [] -> Alcotest.fail "empty path"
      in
      walk p)
    wps

let test_decompose_zero_flow () =
  let g, _ = diamond () in
  let wps = Decompose.paths g ~src:0 ~dst:3 (Array.make 5 0.0) in
  Alcotest.(check int) "no paths" 0 (List.length wps)

(* --- multicommodity ------------------------------------------------- *)

let test_gk_single_commodity_matches_maxflow () =
  let g, _ = diamond () in
  let r =
    Multicommodity.solve ~epsilon:0.05 g
      [| { Multicommodity.src = 0; dst = 3; demand = 100.0 } |]
  in
  (* Max flow is 15, demand 100 -> lambda ~ 0.15. *)
  Alcotest.(check (float 0.01)) "lambda" 0.15 r.Multicommodity.lambda;
  check_capacities g r.Multicommodity.flow

let test_gk_two_commodities_share () =
  (* Two commodities share a single 10-unit link. *)
  let g = Graph.create ~n:4 in
  let _ = Graph.add_edge g ~src:0 ~dst:2 ~capacity:10.0 ~cost:1.0 () in
  let _ = Graph.add_edge g ~src:1 ~dst:2 ~capacity:10.0 ~cost:1.0 () in
  let _ = Graph.add_edge g ~src:2 ~dst:3 ~capacity:10.0 ~cost:1.0 () in
  let r =
    Multicommodity.solve ~epsilon:0.05 g
      [|
        { Multicommodity.src = 0; dst = 3; demand = 10.0 };
        { Multicommodity.src = 1; dst = 3; demand = 10.0 };
      |]
  in
  (* Shared 10-capacity edge 2->3 splits: lambda = 0.5. *)
  Alcotest.(check (float 0.05)) "fair split" 0.5 r.Multicommodity.lambda;
  check_capacities g r.Multicommodity.flow

let test_gk_feasible_demands () =
  let g, _ = diamond () in
  let r =
    Multicommodity.solve ~epsilon:0.05 g
      [| { Multicommodity.src = 0; dst = 3; demand = 5.0 } |]
  in
  Alcotest.(check bool) "lambda >= ~1" true (r.Multicommodity.lambda >= 0.9);
  check_capacities g r.Multicommodity.flow

let test_gk_no_commodities () =
  let g, _ = diamond () in
  let r = Multicommodity.solve g [||] in
  Alcotest.(check int) "no routed entries" 0 (Array.length r.Multicommodity.routed)

(* --- property tests -------------------------------------------------- *)

let random_graph_gen =
  QCheck.Gen.(
    sized_size (int_range 2 7) (fun n ->
        let* m = int_range 1 (n * (n - 1)) in
        let* edges =
          list_repeat m
            (triple (int_range 0 (n - 1)) (int_range 0 (n - 1))
               (pair (int_range 1 20) (int_range 0 10)))
        in
        return (n, edges)))

let build_random (n, edges) =
  let g = Graph.create ~n in
  List.iter
    (fun (s, d, (cap, cost)) ->
      if s <> d then
        ignore
          (Graph.add_edge g ~src:s ~dst:d ~capacity:(float_of_int cap)
             ~cost:(float_of_int cost) ()))
    edges;
  g

let arbitrary_graph =
  QCheck.make ~print:(fun (n, e) ->
      Printf.sprintf "n=%d edges=%s" n
        (String.concat ";"
           (List.map
              (fun (s, d, (c, w)) -> Printf.sprintf "%d->%d c%d w%d" s d c w)
              e)))
    random_graph_gen

let prop_maxflow_valid =
  QCheck.Test.make ~name:"maxflow: conservation + capacities + cut bound"
    ~count:200 arbitrary_graph (fun spec ->
      let g = build_random spec in
      let n = Graph.n_vertices g in
      let src = 0 and dst = n - 1 in
      let r = Maxflow.solve g ~src ~dst in
      check_conservation g ~src ~dst r.Maxflow.flow;
      check_capacities g r.Maxflow.flow;
      (* Max-flow = min-cut. *)
      let side = Maxflow.min_cut g ~src ~dst r in
      let cut =
        Graph.fold_edges
          (fun acc e ->
            if side.(e.Graph.src) && not side.(e.Graph.dst) then
              acc +. e.Graph.capacity
            else acc)
          0.0 g
      in
      Float.abs (cut -. r.Maxflow.value) < 1e-5)

let prop_mincost_value_is_maxflow =
  QCheck.Test.make ~name:"mincost: value equals maxflow" ~count:200
    arbitrary_graph (fun spec ->
      let g = build_random spec in
      let src = 0 and dst = Graph.n_vertices g - 1 in
      let mf = Maxflow.solve g ~src ~dst in
      let mc = Mincost.solve g ~src ~dst in
      check_conservation g ~src ~dst mc.Mincost.flow;
      check_capacities g mc.Mincost.flow;
      Float.abs (mf.Maxflow.value -. mc.Mincost.value) < 1e-5)

let prop_mincost_agrees_with_cycle_cancel =
  QCheck.Test.make ~name:"mincost: two independent solvers agree" ~count:100
    arbitrary_graph (fun spec ->
      let g = build_random spec in
      let src = 0 and dst = Graph.n_vertices g - 1 in
      let a = Mincost.solve g ~src ~dst in
      let b = Cycle_cancel.solve g ~src ~dst in
      Float.abs (a.Mincost.value -. b.Mincost.value) < 1e-5
      && Float.abs (a.Mincost.cost -. b.Mincost.cost) < 1e-4)

let prop_decompose_covers_value =
  QCheck.Test.make ~name:"decompose: path amounts sum to flow value"
    ~count:200 arbitrary_graph (fun spec ->
      let g = build_random spec in
      let src = 0 and dst = Graph.n_vertices g - 1 in
      let r = Maxflow.solve g ~src ~dst in
      let wps = Decompose.paths g ~src ~dst r.Maxflow.flow in
      Float.abs (Decompose.value wps -. r.Maxflow.value) < 1e-4)

let prop_dijkstra_matches_bellman_ford =
  QCheck.Test.make ~name:"dijkstra = bellman-ford on non-negative costs"
    ~count:200 arbitrary_graph (fun spec ->
      let g = build_random spec in
      let dist = Shortest.bellman_ford g ~src:0 in
      let ok = ref true in
      for v = 1 to Graph.n_vertices g - 1 do
        match Shortest.dijkstra g ~src:0 ~dst:v with
        | None -> if Float.is_finite dist.(v) then ok := false
        | Some p ->
            if Float.abs (Shortest.path_cost g p -. dist.(v)) > 1e-6 then
              ok := false
      done;
      !ok)

let prop_yen_sorted_and_loopless =
  QCheck.Test.make ~name:"yen: sorted, distinct, loopless" ~count:100
    arbitrary_graph (fun spec ->
      let g = build_random spec in
      let dst = Graph.n_vertices g - 1 in
      let paths = Shortest.k_shortest g ~src:0 ~dst ~k:4 in
      let costs = List.map (Shortest.path_cost g) paths in
      let sorted = List.sort compare costs = costs in
      let distinct =
        List.length (List.sort_uniq compare paths) = List.length paths
      in
      let loopless =
        List.for_all
          (fun p ->
            let vs =
              0 :: List.map (fun e -> (Graph.edge g e).Graph.dst) p
            in
            List.length (List.sort_uniq compare vs) = List.length vs)
          paths
      in
      sorted && distinct && loopless)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_maxflow_valid;
      prop_mincost_value_is_maxflow;
      prop_mincost_agrees_with_cycle_cancel;
      prop_decompose_covers_value;
      prop_dijkstra_matches_bellman_ford;
      prop_yen_sorted_and_loopless;
    ]

let suite =
  [
    Alcotest.test_case "graph basics" `Quick test_graph_basics;
    Alcotest.test_case "graph parallel edges" `Quick test_graph_parallel_edges;
    Alcotest.test_case "graph filter" `Quick test_graph_filter;
    Alcotest.test_case "graph map_edges" `Quick test_graph_map_edges;
    Alcotest.test_case "maxflow diamond" `Quick test_maxflow_diamond;
    Alcotest.test_case "maxflow disconnected" `Quick test_maxflow_disconnected;
    Alcotest.test_case "maxflow single edge" `Quick test_maxflow_single_edge;
    Alcotest.test_case "maxflow parallel edges" `Quick test_maxflow_parallel;
    Alcotest.test_case "maxflow zero capacity" `Quick test_maxflow_zero_capacity;
    Alcotest.test_case "min cut matches value" `Quick test_min_cut_matches_value;
    Alcotest.test_case "mincost prefers cheap" `Quick test_mincost_prefers_cheap_path;
    Alcotest.test_case "mincost limit" `Quick test_mincost_limit;
    Alcotest.test_case "mincost value = maxflow" `Quick test_mincost_value_equals_maxflow;
    Alcotest.test_case "mincost spills to expensive" `Quick test_mincost_spills_to_expensive;
    Alcotest.test_case "cycle-cancel agrees" `Quick test_cycle_cancel_agrees_diamond;
    Alcotest.test_case "dijkstra shortest" `Quick test_dijkstra_shortest;
    Alcotest.test_case "dijkstra unreachable" `Quick test_dijkstra_unreachable;
    Alcotest.test_case "dijkstra usable filter" `Quick test_dijkstra_respects_usable;
    Alcotest.test_case "bellman-ford basics" `Quick test_bellman_ford_matches_dijkstra;
    Alcotest.test_case "bellman-ford negative edge" `Quick test_bellman_ford_negative_edge;
    Alcotest.test_case "bellman-ford negative cycle" `Quick test_bellman_ford_negative_cycle;
    Alcotest.test_case "yen 3 paths" `Quick test_yen_k_shortest;
    Alcotest.test_case "yen k too large" `Quick test_yen_k_larger_than_paths;
    Alcotest.test_case "decompose total" `Quick test_decompose_total;
    Alcotest.test_case "decompose zero" `Quick test_decompose_zero_flow;
    Alcotest.test_case "gk single = maxflow" `Quick test_gk_single_commodity_matches_maxflow;
    Alcotest.test_case "gk shared bottleneck" `Quick test_gk_two_commodities_share;
    Alcotest.test_case "gk feasible demands" `Quick test_gk_feasible_demands;
    Alcotest.test_case "gk no commodities" `Quick test_gk_no_commodities;
  ]
  @ props

(* --- push-relabel cross-check ----------------------------------------- *)

let test_push_relabel_diamond () =
  let g, _ = diamond () in
  let r = Push_relabel.solve g ~src:0 ~dst:3 in
  Alcotest.(check (float 1e-6)) "value" 15.0 r.Maxflow.value;
  check_conservation g ~src:0 ~dst:3 r.Maxflow.flow;
  check_capacities g r.Maxflow.flow

let test_push_relabel_disconnected () =
  let g = Graph.create ~n:3 in
  let _ = Graph.add_edge g ~src:0 ~dst:1 ~capacity:5.0 ~cost:0.0 () in
  let r = Push_relabel.solve g ~src:0 ~dst:2 in
  Alcotest.(check (float 1e-9)) "no path" 0.0 r.Maxflow.value

let test_push_relabel_parallel () =
  let g = Graph.create ~n:2 in
  let _ = Graph.add_edge g ~src:0 ~dst:1 ~capacity:3.0 ~cost:0.0 () in
  let _ = Graph.add_edge g ~src:0 ~dst:1 ~capacity:4.0 ~cost:0.0 () in
  let r = Push_relabel.solve g ~src:0 ~dst:1 in
  Alcotest.(check (float 1e-9)) "sum" 7.0 r.Maxflow.value

let prop_push_relabel_agrees_with_dinic =
  QCheck.Test.make ~name:"push-relabel = dinic on random graphs" ~count:300
    arbitrary_graph (fun spec ->
      let g = build_random spec in
      let src = 0 and dst = Graph.n_vertices g - 1 in
      let a = Maxflow.solve g ~src ~dst in
      let b = Push_relabel.solve g ~src ~dst in
      check_conservation g ~src ~dst b.Maxflow.flow;
      check_capacities g b.Maxflow.flow;
      Float.abs (a.Maxflow.value -. b.Maxflow.value) < 1e-5)

let push_relabel_cases =
  [
    Alcotest.test_case "push-relabel diamond" `Quick test_push_relabel_diamond;
    Alcotest.test_case "push-relabel disconnected" `Quick test_push_relabel_disconnected;
    Alcotest.test_case "push-relabel parallel" `Quick test_push_relabel_parallel;
    QCheck_alcotest.to_alcotest prop_push_relabel_agrees_with_dinic;
  ]

let suite = suite @ push_relabel_cases

(* Integration tests of the figure-reproduction drivers: run each with
   stdout parked on /dev/null and assert the returned headlines sit in
   the calibration bands.  This is the same code path `bench/main.exe`
   and `rwc figures` execute. *)

let quiet f =
  (* Park stdout on /dev/null for the duration of [f]. *)
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stdout;
  Unix.close devnull;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved
  in
  match f () with
  | v ->
      restore ();
      v
  | exception e ->
      restore ();
      raise e

let tiny_fleet =
  { Rwc_telemetry.Fleet.seed = 2017; n_cables = 6; lambdas_per_cable = 40; years = 0.4 }

let report = lazy (quiet (fun () -> Rwc_telemetry.Analyze.fleet_report tiny_fleet))

let test_fig2_headlines () =
  let h =
    quiet (fun () -> Rwc_figures.Measurement_figs.fig2 (Lazy.force report))
  in
  Alcotest.(check bool) "hdr share in band" true
    (h.Rwc_figures.Measurement_figs.share_hdr_below_2db > 0.7
    && h.Rwc_figures.Measurement_figs.share_hdr_below_2db < 0.95);
  Alcotest.(check bool) "gain at fleet scale plausible" true
    (h.Rwc_figures.Measurement_figs.total_gain_tbps_fleet_scale > 100.0
    && h.Rwc_figures.Measurement_figs.total_gain_tbps_fleet_scale < 200.0)

let test_fig4_headlines () =
  let h =
    quiet (fun () ->
        Rwc_figures.Measurement_figs.fig4 (Lazy.force report) ~seed:41)
  in
  Alcotest.(check bool) "opportunity > 0.9" true
    (h.Rwc_figures.Measurement_figs.opportunity_fraction > 0.9);
  Alcotest.(check bool) "fiber cuts a small share" true
    (h.Rwc_figures.Measurement_figs.fiber_cut_freq_percent < 10.0);
  Alcotest.(check bool) "salvageable near a quarter" true
    (h.Rwc_figures.Measurement_figs.salvageable_fraction > 0.15
    && h.Rwc_figures.Measurement_figs.salvageable_fraction < 0.45)

let test_fig6_headlines () =
  let h = quiet (fun () -> Rwc_figures.Testbed_figs.fig6 ~seed:43) in
  Alcotest.(check bool) "stock ~68s" true
    (h.Rwc_figures.Testbed_figs.stock_mean_s > 55.0
    && h.Rwc_figures.Testbed_figs.stock_mean_s < 80.0);
  Alcotest.(check bool) "efficient ~35ms" true
    (h.Rwc_figures.Testbed_figs.efficient_mean_s > 0.025
    && h.Rwc_figures.Testbed_figs.efficient_mean_s < 0.045)

let test_fig1_3_5_7_8_run () =
  (* Smoke: the remaining drivers complete without raising. *)
  quiet (fun () ->
      Rwc_figures.Measurement_figs.fig1 tiny_fleet;
      Rwc_figures.Measurement_figs.fig3 tiny_fleet;
      Rwc_figures.Testbed_figs.fig5 ~seed:42;
      Rwc_figures.Abstraction_figs.fig7 ();
      Rwc_figures.Abstraction_figs.fig8 ();
      Rwc_figures.Abstraction_figs.theorem1 ~seed:44)

let test_sim_headlines () =
  let h =
    quiet (fun () ->
        Rwc_figures.Sim_figs.run
          ~config:
            {
              Rwc_sim.Runner.default_config with
              Rwc_sim.Runner.days = 4.0;
              te_interval_h = 12.0;
              top_demands = 16;
              epsilon = 0.25;
            }
          ())
  in
  Alcotest.(check bool) "gain positive" true
    (h.Rwc_figures.Sim_figs.throughput_gain > 1.0);
  Alcotest.(check bool) "adaptive fewer failures than static-max" true
    (h.Rwc_figures.Sim_figs.adaptive_failures
    <= h.Rwc_figures.Sim_figs.static_max_failures)

let test_csv_sink () =
  let dir = Filename.temp_file "rwc_csv" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Rwc_figures.Report.set_csv_dir (Some dir);
  quiet (fun () -> ignore (Rwc_figures.Testbed_figs.fig6 ~seed:43));
  Rwc_figures.Report.set_csv_dir None;
  let files = Sys.readdir dir in
  Alcotest.(check bool) "csv files written" true (Array.length files >= 2);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) files;
  Unix.rmdir dir

let suite =
  [
    Alcotest.test_case "fig2 headlines" `Slow test_fig2_headlines;
    Alcotest.test_case "fig4 headlines" `Slow test_fig4_headlines;
    Alcotest.test_case "fig6 headlines" `Quick test_fig6_headlines;
    Alcotest.test_case "other figures run" `Slow test_fig1_3_5_7_8_run;
    Alcotest.test_case "sim headlines" `Slow test_sim_headlines;
    Alcotest.test_case "csv sink" `Quick test_csv_sink;
  ]

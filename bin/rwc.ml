(* rwc: command-line front end of the Run/Walk/Crawl reproduction.

   Subcommands:
     figures        reproduce the paper's figures (all or --only ID)
     analyze        fleet-wide SNR telemetry analysis (Section 2)
     simulate       WAN policy simulation (throughput + availability)
     chaos          fault-rate sweep: throughput degradation per policy
     bvt            modulation-change latency experiment (Section 3.1)
     constellation  render one constellation panel (Figure 5)
     torture        crash-point torture across every storage boundary
     fsck           detect and repair damaged journals / checkpoint dirs *)

open Cmdliner
module Obs = Rwc_obs

let fleet_of ~cables ~years ~seed =
  {
    Rwc_telemetry.Fleet.seed;
    n_cables = cables;
    lambdas_per_cable = 40;
    years;
  }

(* ---- observability ----------------------------------------------------- *)

(* Every subcommand composes [obs_term] in front of its own arguments:
   --metrics[=PATH] and --trace PATH enable the process-global
   registry/tracer up front and register an at_exit finalizer that
   writes the requested artifacts and prints the stderr summaries once
   the command is done. *)

let metrics_dest = ref None
let trace_dest = ref None

let obs_finalize () =
  (match !trace_dest with
  | Some path ->
      Obs.Trace.write path;
      prerr_string (Obs.Trace.flame_summary ())
  | None -> ());
  match !metrics_dest with
  | Some path ->
      if path <> "-" then Obs.Metrics.write_json path;
      Format.eprintf "%a@." Obs.Metrics.pp_summary ()
  | None -> ()

(* Fail before the (possibly long) run, not in the at_exit hook after
   it: check we can actually create the artifact now. *)
let check_writable flag path =
  match open_out path with
  | oc -> close_out oc
  | exception Sys_error msg ->
      Printf.eprintf "rwc: %s: %s\n" flag msg;
      exit 2

let obs_setup metrics trace =
  metrics_dest := metrics;
  trace_dest := trace;
  (match metrics with
  | Some path when path <> "-" -> check_writable "--metrics" path
  | _ -> ());
  Option.iter (check_writable "--trace") trace;
  if metrics <> None then Obs.Metrics.enable ();
  if trace <> None then Obs.Trace.enable ();
  if metrics <> None || trace <> None then at_exit obs_finalize

let metrics_flag =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "metrics" ] ~docv:"PATH"
        ~doc:
          "Enable the metric registry; print a summary table to stderr when \
           the command finishes.  With an explicit $(docv) (other than -), \
           also write the full snapshot there as JSON.")

let trace_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"PATH"
        ~doc:
          "Enable span tracing; write Chrome trace_event JSON to $(docv) \
           (open in chrome://tracing or Perfetto) and print a flame summary \
           to stderr.")

let obs_term = Term.(const obs_setup $ metrics_flag $ trace_flag)

(* --domains: width of the Rwc_par pool the control loop fans its
   shard-local phases over.  Validated here, once, for every command
   that takes it: a non-positive width is an error, and a width beyond
   the machine's recommended domain count is capped (spawning more
   domains than cores only adds scheduling noise, never speed). *)
let clamp_domains cmd domains =
  if domains < 1 then begin
    Printf.eprintf "%s: --domains must be >= 1\n" cmd;
    exit 2
  end;
  let cap = Domain.recommended_domain_count () in
  if domains > cap then begin
    Printf.eprintf
      "%s: note: --domains %d exceeds this machine's recommended domain \
       count; capping at %d\n"
      cmd domains cap;
    cap
  end
  else domains

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Fan the shard-local control-loop phases (per-duct telemetry \
           generation, the per-sweep observe pass) over $(docv) domains.  \
           Reports, journals, manifests and checkpoints are byte-identical \
           for any value: every shard draws from its own RNG substream and \
           decisions always commit through the sequential TE/DES/journal \
           path in duct-index order.  Values beyond the machine's \
           recommended domain count are capped with a note.  Default 1: \
           the plain sequential loop, no domains spawned.")

let manifest_metrics () =
  if Obs.Metrics.enabled () then Obs.Metrics.to_json () else Obs.Json.Null

(* mkdir -p: create every missing component of [dir]. *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

(* A fresh empty scratch directory (used for the chaos crash sweep's
   throwaway checkpoints). *)
let fresh_temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  path

let rec rm_rf_dir dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf_dir p
        else try Sys.remove p with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let ensure_dir what dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then begin
      Printf.eprintf "%s %s: exists but is not a directory\n" what dir;
      exit 2
    end
  end
  else
    try mkdir_p dir
    with Sys_error e ->
      Printf.eprintf "%s %s: cannot create: %s\n" what dir e;
      exit 2

(* ---- figures --------------------------------------------------------- *)

let known_figures =
  [ "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "thm1"; "sim" ]

let run_figures () full only sim_days csv_dir =
  (* The csv directory is validated (and, when missing, created)
     before any expensive fleet work, so a typo cannot burn minutes of
     fleet analysis and then fail at the first write. *)
  (match csv_dir with Some dir -> ensure_dir "--csv" dir | None -> ());
  Rwc_figures.Report.set_csv_dir csv_dir;
  let fleet =
    if full then Rwc_telemetry.Fleet.default
    else Rwc_telemetry.Fleet.(scaled default ~factor:5)
  in
  let wants id = match only with [] -> true | ids -> List.mem id ids in
  let unknown = List.filter (fun id -> not (List.mem id known_figures)) only in
  if unknown <> [] then begin
    Printf.eprintf "unknown figure id(s): %s (known: %s)\n"
      (String.concat ", " unknown)
      (String.concat ", " known_figures);
    exit 2
  end;
  if sim_days <> None && not (wants "sim") then
    Printf.eprintf
      "warning: --sim-days has no effect without the sim figure (add --only \
       sim or drop --only)\n";
  (* --full selects the paper-scale fleet AND the paper's 60-day
     simulation horizon unless --sim-days overrides it. *)
  let sim_days =
    match sim_days with
    | Some d -> d
    | None -> if full then Rwc_sim.Runner.default_config.Rwc_sim.Runner.days else 21.0
  in
  let needs_report = wants "fig2" || wants "fig4" in
  let report =
    if needs_report then Some (Rwc_telemetry.Analyze.fleet_report fleet)
    else None
  in
  if wants "fig1" then Rwc_figures.Measurement_figs.fig1 fleet;
  (match report with
  | Some r when wants "fig2" ->
      ignore (Rwc_figures.Measurement_figs.fig2 r)
  | _ -> ());
  if wants "fig3" then Rwc_figures.Measurement_figs.fig3 fleet;
  (match report with
  | Some r when wants "fig4" ->
      ignore (Rwc_figures.Measurement_figs.fig4 r ~seed:41)
  | _ -> ());
  if wants "fig5" then Rwc_figures.Testbed_figs.fig5 ~seed:42;
  if wants "fig6" then ignore (Rwc_figures.Testbed_figs.fig6 ~seed:43);
  if wants "fig7" then Rwc_figures.Abstraction_figs.fig7 ();
  if wants "fig8" then Rwc_figures.Abstraction_figs.fig8 ();
  if wants "thm1" then Rwc_figures.Abstraction_figs.theorem1 ~seed:44;
  let sim_headlines =
    if wants "sim" then
      Some
        (Rwc_figures.Sim_figs.run
           ~config:
             {
               Rwc_sim.Runner.default_config with
               Rwc_sim.Runner.days = sim_days;
             }
           ())
    else None
  in
  match csv_dir with
  | None -> ()
  | Some dir ->
      let open Obs.Json in
      let reports =
        match sim_headlines with
        | None -> []
        | Some h ->
            [
              ( "sim_headlines",
                Assoc
                  [
                    ( "throughput_gain",
                      Float h.Rwc_figures.Sim_figs.throughput_gain );
                    ( "static_max_failures",
                      Int h.Rwc_figures.Sim_figs.static_max_failures );
                    ( "adaptive_failures",
                      Int h.Rwc_figures.Sim_figs.adaptive_failures );
                    ("adaptive_flaps", Int h.Rwc_figures.Sim_figs.adaptive_flaps);
                  ] );
            ]
      in
      let manifest =
        Obs.Manifest.make ~command:"figures"
          ~seed:fleet.Rwc_telemetry.Fleet.seed
          ~config:
            [
              ("full", Bool full);
              ("only", List (List.map (fun id -> String id) only));
              ("sim_days", Float sim_days);
              ("n_links", Int (Rwc_telemetry.Fleet.n_links fleet));
              ("years", Float fleet.Rwc_telemetry.Fleet.years);
            ]
          ~reports ~metrics:(manifest_metrics ()) ()
      in
      Obs.Manifest.write (Filename.concat dir "manifest.json") manifest

let full_flag =
  Arg.(value & flag & info [ "full" ] ~doc:"Use the paper-scale 2000-link fleet.")

let only_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "only" ] ~docv:"ID"
        ~doc:"Reproduce only this figure (repeatable). Known ids: fig1-fig8, thm1, sim.")

let sim_days_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "sim-days" ] ~docv:"DAYS"
        ~doc:
          "Horizon of the sim figure (default: 21, or the paper's 60 with \
           $(b,--full)).  Only meaningful when the sim figure runs.")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"DIR"
        ~doc:
          "Also write every plotted series to CSV files under $(docv) \
           (created if missing), plus a manifest.json run record.")

let figures_cmd =
  Cmd.v
    (Cmd.info "figures" ~doc:"Reproduce the paper's figures and tables")
    Term.(
      const run_figures $ obs_term $ full_flag $ only_arg $ sim_days_arg
      $ csv_arg)

(* ---- analyze --------------------------------------------------------- *)

let run_analyze () cables years seed =
  let fleet = fleet_of ~cables ~years ~seed in
  Printf.printf "analyzing %d links over %.1f years (seed %d)...\n"
    (Rwc_telemetry.Fleet.n_links fleet) years seed;
  let r = Rwc_telemetry.Analyze.fleet_report fleet in
  Printf.printf "share of links with 95%% HDR < 2 dB : %.3f\n"
    r.Rwc_telemetry.Analyze.share_hdr_below_2db;
  Printf.printf "share of links feasible >= 175 Gbps: %.3f\n"
    r.Rwc_telemetry.Analyze.share_at_least_175;
  Printf.printf "total capacity gain               : %.1f Tbps\n"
    r.Rwc_telemetry.Analyze.total_gain_tbps;
  Printf.printf "mean SNR range (max-min)          : %.1f dB\n"
    (Rwc_stats.Summary.mean r.Rwc_telemetry.Analyze.ranges);
  Printf.printf "100G failure events               : %d\n"
    (Array.length r.Rwc_telemetry.Analyze.failure_min_snrs);
  Printf.printf "  of which salvageable (>= 3 dB)  : %.1f%%\n"
    (100.0 *. r.Rwc_telemetry.Analyze.salvageable_failure_fraction)

let cables_arg =
  Arg.(value & opt int 10 & info [ "cables" ] ~docv:"N" ~doc:"Fiber cables (x40 links).")

let years_arg =
  Arg.(value & opt float 2.5 & info [ "years" ] ~docv:"Y" ~doc:"Observation period.")

let seed_arg =
  Arg.(value & opt int 2017 & info [ "seed" ] ~docv:"S" ~doc:"Fleet seed.")

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze" ~doc:"Fleet-wide SNR telemetry analysis (Section 2)")
    Term.(const run_analyze $ obs_term $ cables_arg $ years_arg $ seed_arg)

(* ---- simulate -------------------------------------------------------- *)

let policy_conv =
  let parse = function
    | "static-100" -> Ok Rwc_sim.Runner.Static_100
    | "static-max" -> Ok Rwc_sim.Runner.Static_max
    | "adaptive-stock" -> Ok (Rwc_sim.Runner.Adaptive Rwc_sim.Runner.Stock)
    | "adaptive-efficient" ->
        Ok (Rwc_sim.Runner.Adaptive Rwc_sim.Runner.Efficient)
    | s -> Error (`Msg (Printf.sprintf "unknown policy %S" s))
  in
  Arg.conv (parse, fun fmt p -> Format.fprintf fmt "%s" (Rwc_sim.Runner.policy_name p))

let faults_conv =
  let parse s =
    match Rwc_fault.of_string s with
    | Ok plan -> Ok plan
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun fmt p -> Format.fprintf fmt "%s" (Rwc_fault.to_string p))

let faults_arg =
  Arg.(
    value
    & opt faults_conv Rwc_fault.none
    & info [ "faults" ] ~docv:"PLAN"
        ~doc:
          "Fault plan: $(b,none) (default), $(b,default), or a \
           comma-separated rule list like \
           $(b,bvt-fail=0.3,te-delay=0.1:1800,seed=99).  With $(b,none) the \
           run is bit-identical to one without the fault layer.")

let storm_conv =
  let parse s =
    match Rwc_storm.plan_of_string s with
    | Ok plan -> Ok plan
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun fmt p -> Format.fprintf fmt "%s" (Rwc_fault.to_string p))

let storm_arg =
  Arg.(
    value
    & opt storm_conv Rwc_fault.none
    & info [ "storm" ] ~docv:"PLAN"
        ~doc:
          "Storage-fault plan applied to every durable write the run \
           performs: $(b,none) (default) or a comma-separated rule list \
           drawn from the $(b,io_*) components, like \
           $(b,io_short=0.1,io_bitflip=0.01,seed=13).  Keys: $(b,io_short) \
           (flushed chunk lands half-written), $(b,io_enospc) (chunk \
           dropped entirely), $(b,io_bitflip) (one bit inverted), \
           $(b,io_torn_rename) (atomic-replace rename lost).  Window \
           positions count storage boundaries, not seconds.  Incompatible \
           with $(b,--checkpoint); use $(b,rwc torture) for crash-recovery \
           testing.")

let guard_conv =
  let parse s =
    match Rwc_guard.of_string s with
    | Ok plan -> Ok plan
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun fmt p -> Format.fprintf fmt "%s" (Rwc_guard.to_string p))

let guard_arg =
  Arg.(
    value
    & opt guard_conv Rwc_guard.none
    & info [ "guard" ] ~docv:"PLAN"
        ~doc:
          "Safety-guard plan for adaptive policies: $(b,none) (default), \
           $(b,default), or comma-separated knob overrides like \
           $(b,suppress=4,budget=1,freeze=1800) (keys: penalty, half-life, \
           suppress, reuse, budget, freeze, fallback, osc-window, \
           osc-cycles, hold).  With $(b,none) the run is bit-identical to \
           one without the guard layer.")

let rollout_conv =
  let parse s =
    match Rwc_rollout.of_string s with
    | Ok plan -> Ok plan
    | Error e -> Error (`Msg e)
  in
  Arg.conv
    (parse, fun fmt p -> Format.fprintf fmt "%s" (Rwc_rollout.to_string p))

let rollout_arg =
  Arg.(
    value
    & opt rollout_conv Rwc_rollout.none
    & info [ "rollout" ] ~docv:"PLAN"
        ~doc:
          "Staged-commit plan for capacity upgrades: $(b,none) (default), \
           $(b,default), or comma-separated knob overrides like \
           $(b,wave=2,bake=1800,fail-gate=1) (keys: wave, group-budget, \
           bake, gate-flaps, gate-quar, gate-slo, hold, settle, \
           freeze=START..STOP, maint, fail-gate).  Upgrades commit in \
           budgeted waves with a health-gated bake window between them; a \
           failed gate rolls every committed link back to its pre-rollout \
           modulation.  With $(b,none) the run is byte-identical to one \
           without the rollout layer.")

let slo_conv =
  let parse s =
    match Rwc_journal.Slo.of_string s with
    | Ok plan -> Ok plan
    | Error e -> Error (`Msg e)
  in
  Arg.conv
    (parse, fun fmt p -> Format.fprintf fmt "%s" (Rwc_journal.Slo.to_string p))

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"PATH"
        ~doc:
          "Record every adaptation decision with its full cause chain \
           (observation, intent, guard verdict, fault outcome, committed \
           capacity) as JSONL to $(docv), one segment per policy run; \
           inspect it with $(b,rwc explain).  Without this flag the journal \
           is disarmed and the run is byte-identical to one without the \
           journal layer.")

let slo_arg =
  Arg.(
    value
    & opt slo_conv Rwc_journal.Slo.none
    & info [ "slo" ] ~docv:"PLAN"
        ~doc:
          "Per-link SLO plan evaluated online over the journal event \
           stream: $(b,none) (default), $(b,default), or comma-separated \
           overrides like $(b,availability=99.9,class=150,at-class=90) \
           (keys: availability, class, at-class, flaps-per-day, \
           quarantine).  Verdicts are folded into the report, the manifest \
           and the slo/* metrics.  Works with or without $(b,--journal).")

(* The journal sink a run emits into: --journal opens the file (failing
   now, not after the run), --slo arms the online tracker, neither
   yields the disarmed sink. *)
let journal_sink journal_path slo =
  (match journal_path with
  | Some p -> check_writable "--journal" p
  | None -> ());
  Rwc_journal.create ?path:journal_path ~slo ()

(* Manifest config entries for the journal, present exactly when the
   sink is armed so journal-off manifests stay byte-identical. *)
let journal_manifest_fields jnl journal_path slo =
  if not (Rwc_journal.armed jnl) then []
  else
    [
      ( "journal",
        match journal_path with
        | Some p -> Obs.Json.String p
        | None -> Obs.Json.Null );
      ("slo", Obs.Json.String (Rwc_journal.Slo.to_string slo));
    ]

let backbone_of = function
  | None -> Rwc_topology.Backbone.north_america
  | Some path -> (
      match Rwc_topology.Parser.parse_file path with
      | Ok t -> t
      | Error e ->
          Printf.eprintf "%s: %s\n" path e;
          exit 2)

let run_simulate () days policy seed faults storm guard rollout journal_path
    slo backbone_file manifest_path checkpoint checkpoint_every resume progress
    domains metrics_interval =
  Option.iter (check_writable "--manifest") manifest_path;
  let domains = clamp_domains "rwc simulate" domains in
  if not (Rwc_fault.is_none storm) then begin
    if checkpoint <> None then begin
      prerr_endline
        "rwc simulate: --storm cannot be combined with --checkpoint (storage \
         faults would damage the artifacts recovery depends on; use rwc \
         torture for crash-recovery testing)";
      exit 2
    end;
    Rwc_storm.inject (Rwc_fault.compile storm)
  end;
  (* Recovery-flag coherence, checked before any expensive work.  A
     crash fault without a checkpoint directory would kill the run with
     nothing to restart from; an online SLO tracker without a journal
     file cannot be rebuilt after a restart (the tracker's state lives
     in the retained journal prefix). *)
  if resume && checkpoint = None then begin
    prerr_endline "rwc simulate: --resume requires --checkpoint DIR";
    exit 2
  end;
  if Rwc_recover.plan_has_crash faults && checkpoint = None then begin
    prerr_endline
      "rwc simulate: a crash= fault rule requires --checkpoint DIR (the \
       restart loop recovers from the newest checkpoint)";
    exit 2
  end;
  if checkpoint <> None && checkpoint_every <= 0 then begin
    prerr_endline "rwc simulate: --checkpoint-every must be >= 1";
    exit 2
  end;
  (match checkpoint with
  | Some _ when (not (Rwc_journal.Slo.is_none slo)) && journal_path = None ->
      prerr_endline
        "rwc simulate: --checkpoint with an armed --slo requires --journal \
         (a resumed run rebuilds the online SLO tracker from the journal \
         file)";
      exit 2
  | _ -> ());
  (* --metrics-interval: instead of one registry snapshot at exit, the
     --metrics file becomes a JSONL trajectory — a full snapshot at the
     first due sweep, then one incremental delta per interval. *)
  let sim_hooks =
    match metrics_interval with
    | None -> Rwc_sim.Runner.no_hooks
    | Some n ->
        if n <= 0 then begin
          prerr_endline "rwc simulate: --metrics-interval must be >= 1";
          exit 2
        end;
        let path =
          match !metrics_dest with
          | Some p when p <> "-" -> p
          | _ ->
              prerr_endline
                "rwc simulate: --metrics-interval requires --metrics PATH \
                 (the snapshot trajectory is written there as JSONL)";
              exit 2
        in
        (* The at_exit finalizer keeps only the stderr summary; the file
           now carries the trajectory, not a final snapshot. *)
        metrics_dest := Some "-";
        let oc = open_out path in
        at_exit (fun () -> try close_out oc with Sys_error _ -> ());
        let last = ref (Obs.Json.Assoc []) in
        {
          Rwc_sim.Runner.no_hooks with
          Rwc_sim.Runner.on_sweep =
            Some
              (fun ~k ~now_s ~events:_ ->
                if k mod n = 0 then begin
                  let snap = Obs.Metrics.to_json () in
                  let delta = Obs.Metrics.snapshot_delta !last snap in
                  last := snap;
                  match delta with
                  | Obs.Json.Assoc [] -> ()
                  | _ ->
                      output_string oc
                        (Obs.Json.to_string
                           (Obs.Json.Assoc
                              [
                                ("now_s", Obs.Json.Float now_s);
                                ("delta", delta);
                              ]));
                      output_char oc '\n';
                      flush oc
                end);
        }
  in
  let backbone = backbone_of backbone_file in
  let config_of jnl =
    {
      Rwc_sim.Runner.default_config with
      Rwc_sim.Runner.days;
      seed;
      faults;
      guard;
      rollout;
      journal = jnl;
      progress;
      domains;
      hooks = sim_hooks;
    }
  in
  (* Both the plain and the checkpointed path reduce their results to
     (policy name, rendered line, report JSON) rows, so printing and
     the manifest are shared — and byte-identical across them. *)
  let finish ~jnl ~extra_config rows =
    List.iter (fun (_, pp, _) -> print_endline pp) rows;
    match manifest_path with
    | None -> ()
    | Some path ->
        let open Obs.Json in
        let config = config_of jnl in
        let manifest =
          Obs.Manifest.make ~command:"simulate" ~seed
            ~config:
              ([
                 ("days", Float days);
                ( "te_interval_h",
                  Float config.Rwc_sim.Runner.te_interval_h );
                ("wavelengths", Int config.Rwc_sim.Runner.wavelengths);
                ( "demand_fraction",
                  Float config.Rwc_sim.Runner.demand_fraction );
                ("top_demands", Int config.Rwc_sim.Runner.top_demands);
                ("epsilon", Float config.Rwc_sim.Runner.epsilon);
                ( "backbone",
                  String (Option.value backbone_file ~default:"north-america") );
                ("faults", String (Rwc_fault.to_string faults));
                ("guard", String (Rwc_guard.to_string guard));
                ("rollout", String (Rwc_rollout.to_string rollout));
              ]
              @ extra_config
              @ journal_manifest_fields jnl journal_path slo)
            ~reports:(List.map (fun (name, _, j) -> (name, j)) rows)
            ~metrics:(manifest_metrics ()) ()
        in
        Obs.Manifest.write path manifest
  in
  let row_of_report r =
    ( Rwc_sim.Runner.policy_name r.Rwc_sim.Runner.policy,
      Format.asprintf "%a" Rwc_sim.Runner.pp_report r,
      Rwc_sim.Runner.json_of_report r )
  in
  match checkpoint with
  | None ->
      let jnl = journal_sink journal_path slo in
      let config = config_of jnl in
      let reports =
        match policy with
        | Some p -> [ Rwc_sim.Runner.run ~config ~backbone p ]
        | None -> Rwc_sim.Runner.compare_policies ~config ~backbone ()
      in
      Rwc_journal.close jnl;
      finish ~jnl ~extra_config:[] (List.map row_of_report reports)
  | Some dir -> (
      match
        Rwc_recover.create ~dir ~every:checkpoint_every ?journal_path ~slo
          ~faults ~resume ()
      with
      | Error e ->
          Printf.eprintf "rwc simulate: --checkpoint %s: %s\n" dir e;
          exit 2
      | Ok (ctx, resume_from) ->
          (match resume_from with
          | Some c ->
              if c.Rwc_recover.ck_seed <> seed || c.Rwc_recover.ck_days <> days
              then begin
                Printf.eprintf
                  "rwc simulate: --resume: checkpoint in %s belongs to a run \
                   with seed %d over %g days, not seed %d over %g days\n"
                  dir c.Rwc_recover.ck_seed c.Rwc_recover.ck_days seed days;
                exit 2
              end
          | None ->
              if resume then
                Printf.eprintf
                  "rwc simulate: --resume: no valid checkpoint in %s; \
                   starting from scratch\n%!"
                  dir);
          (* Resuming reopens the journal truncated to the checkpoint's
             high-water mark instead of truncating it to zero. *)
          let jnl =
            match resume_from with
            | Some c -> (
                match journal_path with
                | None -> Rwc_journal.create ~slo ()
                | Some p -> (
                    match
                      Rwc_journal.resume ~path:p ~slo
                        ~at:c.Rwc_recover.ck_journal_bytes
                        ~events:c.Rwc_recover.ck_journal_events ()
                    with
                    | Ok j -> j
                    | Error e ->
                        Printf.eprintf "rwc simulate: --resume: %s: %s\n" p e;
                        exit 2))
            | None -> journal_sink journal_path slo
          in
          (* Ctrl-C / SIGTERM cut a final checkpoint at the next sample
             boundary instead of tearing the state down mid-sweep. *)
          let handler =
            Sys.Signal_handle (fun _ -> Rwc_recover.request_stop ctx)
          in
          Sys.set_signal Sys.sigint handler;
          Sys.set_signal Sys.sigterm handler;
          let policies =
            match policy with
            | Some p -> [ p ]
            | None -> Rwc_sim.Runner.all_policies
          in
          let outcomes =
            try
              Rwc_sim.Runner.run_recoverable ~config:(config_of jnl) ~backbone
                ~ctx ~resume_from ~policies ()
            with Rwc_recover.Interrupted ->
              Printf.eprintf
                "rwc simulate: interrupted; checkpoint written to %s — rerun \
                 the same command with --resume to continue\n"
                dir;
              exit 130
          in
          if ctx.Rwc_recover.restarts > 0 then
            Printf.eprintf
              "rwc simulate: recovered from %d crash restart%s\n"
              ctx.Rwc_recover.restarts
              (if ctx.Rwc_recover.restarts = 1 then "" else "s");
          let rows =
            List.map
              (function
                | Rwc_sim.Runner.Replayed { policy; pp; json } ->
                    ( Rwc_sim.Runner.policy_name policy,
                      pp,
                      match Obs.Json.parse json with
                      | Ok j -> j
                      | Error _ -> Obs.Json.Null )
                | Rwc_sim.Runner.Ran r -> row_of_report r)
              outcomes
          in
          finish ~jnl
            ~extra_config:
              [
                ("checkpoint", Obs.Json.String dir);
                ("checkpoint_every", Obs.Json.Int checkpoint_every);
                ("resume", Obs.Json.Bool resume);
              ]
            rows)

let days_arg =
  Arg.(value & opt float 21.0 & info [ "days" ] ~docv:"D" ~doc:"Horizon in days.")

let policy_arg =
  Arg.(
    value
    & opt (some policy_conv) None
    & info [ "policy" ] ~docv:"P"
        ~doc:
          "Run one policy only: static-100, static-max, adaptive-stock or \
           adaptive-efficient. Default: compare all.")

let sim_seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"S" ~doc:"Simulation seed.")

let backbone_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "backbone" ] ~docv:"FILE"
        ~doc:
          "Topology file to simulate on (default: the embedded \
           North-American backbone).")

let manifest_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "manifest" ] ~docv:"PATH"
        ~doc:
          "Write a structured run record (config, seed, version, per-policy \
           report, metric snapshot) as JSON to $(docv).")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"DIR"
        ~doc:
          "Write versioned, CRC-guarded checkpoints of the full control-loop \
           state under $(docv) (created if missing): every \
           $(b,--checkpoint-every) telemetry sweeps, at policy boundaries, \
           and on SIGINT/SIGTERM.  A crashed or interrupted run restarted \
           with $(b,--resume) continues from the newest valid checkpoint and \
           produces reports (and a journal) byte-identical to an \
           uninterrupted run.  Also required by $(b,crash=) fault rules, \
           which kill and restart the controller in-process.")

let checkpoint_every_arg =
  Arg.(
    value & opt int 96
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "Telemetry sweeps between periodic checkpoints (default 96: one \
           simulated day at the 15-minute cadence).  Under a $(b,crash=) \
           fault, progress requires surviving $(docv) consecutive crash \
           draws after each restart — pick an interval well below \
           1/rate.")

let resume_flag =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Resume from the newest valid checkpoint in $(b,--checkpoint) \
           $(i,DIR): completed policies are reprinted from their stored \
           renderings, the in-progress one restarts from its captured \
           state, and the $(b,--journal) file is truncated to the \
           checkpoint's high-water mark and re-emitted byte-identically.")

let progress_flag =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Single-line stderr heartbeat per policy run: sim-day, events/s \
           and ETA, redrawn in place.  Purely cosmetic — results are \
           identical with or without it.")

let sim_metrics_interval_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "metrics-interval" ] ~docv:"N"
        ~doc:
          "With $(b,--metrics PATH): write the metric registry to $(docv) as \
           a JSONL trajectory instead of one final snapshot — a full \
           snapshot at the first due sweep, then one incremental delta \
           (changed series only) every $(docv) telemetry sweeps (96 = one \
           simulated day at the 15-minute cadence).")

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate" ~doc:"WAN policy simulation (throughput/availability)")
    Term.(
      const run_simulate $ obs_term $ days_arg $ policy_arg $ sim_seed_arg
      $ faults_arg $ storm_arg $ guard_arg $ rollout_arg $ journal_arg
      $ slo_arg $ backbone_file_arg $ manifest_arg $ checkpoint_arg
      $ checkpoint_every_arg $ resume_flag $ progress_flag $ domains_arg
      $ sim_metrics_interval_arg)

(* ---- chaos ------------------------------------------------------------- *)

(* Sweep the default fault plan's rates and report how much delivered
   throughput each policy gives up as the infrastructure gets less
   reliable.  Factor 0 is the fault-free baseline every other row is
   compared against. *)

let run_chaos () days seed factors policy guard rollout journal_path slo
    backbone_file manifest_path json_path crash_rates progress domains =
  Option.iter (check_writable "--manifest") manifest_path;
  Option.iter (check_writable "--json") json_path;
  let domains = clamp_domains "rwc chaos" domains in
  let crash_rates = List.sort_uniq compare crash_rates in
  if List.exists (fun r -> r < 0.0 || r >= 1.0) crash_rates then begin
    prerr_endline "rwc chaos: --crash must be a probability in [0, 1)";
    exit 2
  end;
  (* One sink for the whole sweep: every (factor, guard, policy) run
     appends its own Run_start-headed segment, so `rwc explain --run N`
     can pick any of them out of the one file. *)
  let jnl = journal_sink journal_path slo in
  let backbone = backbone_of backbone_file in
  let factors = List.sort_uniq compare factors in
  let factors = if List.mem 0.0 factors then factors else 0.0 :: factors in
  if List.exists (fun f -> f < 0.0) factors then begin
    prerr_endline "rwc chaos: --factor must be >= 0";
    exit 2
  end;
  (* With an armed --guard plan every fault level runs twice, guarded
     and unguarded, so the table shows what the safety layer buys (or
     costs) at each level.  The baseline both variants are compared
     against is the unguarded fault-free run. *)
  let variants =
    if Rwc_guard.is_none guard then [ false ] else [ false; true ]
  in
  (* Same doubling for --rollout: each (factor, guard) cell runs with
     upgrades committing instantly and again staged behind the gated
     plan, so the table shows what the bake windows cost under faults. *)
  let gate_variants =
    if Rwc_rollout.is_none rollout then [ false ] else [ false; true ]
  in
  let run_at ~guarded ~gated factor =
    let faults =
      if factor = 0.0 then Rwc_fault.none
      else Rwc_fault.scaled Rwc_fault.default ~factor
    in
    let config =
      {
        Rwc_sim.Runner.default_config with
        Rwc_sim.Runner.days;
        seed;
        faults;
        guard = (if guarded then guard else Rwc_guard.none);
        rollout = (if gated then rollout else Rwc_rollout.none);
        journal = jnl;
        progress;
        domains;
      }
    in
    match policy with
    | Some p -> [ Rwc_sim.Runner.run ~config ~backbone p ]
    | None -> Rwc_sim.Runner.compare_policies ~config ~backbone ()
  in
  let sweep =
    List.concat_map
      (fun factor ->
        List.concat_map
          (fun guarded ->
            List.map
              (fun gated ->
                (factor, guarded, gated, run_at ~guarded ~gated factor))
              gate_variants)
          variants)
      factors
  in
  Rwc_journal.close jnl;
  let baseline =
    let _, _, _, reports =
      List.find
        (fun (f, guarded, gated, _) -> f = 0.0 && (not guarded) && not gated)
        sweep
    in
    reports
  in
  let baseline_for p =
    (List.find (fun r -> r.Rwc_sim.Runner.policy = p) baseline)
      .Rwc_sim.Runner.delivered_pbit
  in
  let degradation_of r =
    let base = baseline_for r.Rwc_sim.Runner.policy in
    100.0 *. (r.Rwc_sim.Runner.delivered_pbit -. base) /. base
  in
  Printf.printf
    "chaos sweep: %.1f days, seed %d, plan 'default' scaled per factor\n" days
    seed;
  Printf.printf "%-7s %-5s %-5s %-22s %15s %11s %5s %6s %9s\n" "factor" "guard"
    "roll" "policy" "delivered(Pbit)" "vs-baseline" "inj" "retry" "fallback";
  List.iter
    (fun (factor, guarded, gated, reports) ->
      List.iter
        (fun r ->
          let inj, retry, fallback =
            match r.Rwc_sim.Runner.fault_stats with
            | None -> ("-", "-", "-")
            | Some f ->
                ( string_of_int f.Rwc_sim.Runner.injected,
                  string_of_int f.Rwc_sim.Runner.retries,
                  string_of_int f.Rwc_sim.Runner.fallbacks )
          in
          Printf.printf "%-7.2f %-5s %-5s %-22s %15.2f %+10.3f%% %5s %6s %9s\n"
            factor
            (if guarded then "on" else "off")
            (if gated then "on" else "off")
            (Rwc_sim.Runner.policy_name r.Rwc_sim.Runner.policy)
            r.Rwc_sim.Runner.delivered_pbit (degradation_of r) inj retry
            fallback)
        reports)
    sweep;
  (* Crash-rate sweep: the factor-1.00 plan plus a crash= rule killing
     the controller at random sample boundaries, recovered in-process
     from throwaway checkpoints.  Recovery is byte-exact, so delivered
     throughput must equal the plain factor-1.00 run's — the vs-f1.00
     column doubles as a live self-check of the recovery path. *)
  let crash_rows =
    if crash_rates = [] then []
    else begin
      let reference =
        match
          List.find_opt
            (fun (f, guarded, gated, _) ->
              f = 1.0 && (not guarded) && not gated)
            sweep
        with
        | Some (_, _, _, reports) -> reports
        | None ->
            (* 1.0 was excluded from --factor: run the crash-free
               reference once, journal disarmed. *)
            let config =
              {
                Rwc_sim.Runner.default_config with
                Rwc_sim.Runner.days;
                seed;
                faults = Rwc_fault.scaled Rwc_fault.default ~factor:1.0;
                domains;
              }
            in
            (match policy with
            | Some p -> [ Rwc_sim.Runner.run ~config ~backbone p ]
            | None -> Rwc_sim.Runner.compare_policies ~config ~backbone ())
      in
      let ref_delivered p =
        (List.find (fun r -> r.Rwc_sim.Runner.policy = p) reference)
          .Rwc_sim.Runner.delivered_pbit
      in
      List.concat_map
        (fun rate ->
          let faults =
            match
              Rwc_fault.of_string (Printf.sprintf "default,crash=%g" rate)
            with
            | Ok p -> p
            | Error e ->
                Printf.eprintf "rwc chaos: --crash: %s\n" e;
                exit 2
          in
          let dir = fresh_temp_dir "rwc-chaos-ckpt" in
          (* A tight checkpoint cadence: progress past a checkpoint
             requires surviving `every` fresh crash draws, so at high
             rates a day-sized interval would never be crossed. *)
          match Rwc_recover.create ~dir ~every:8 ~faults ~resume:false () with
          | Error e ->
              Printf.eprintf "rwc chaos: --crash: %s: %s\n" dir e;
              exit 2
          | Ok (ctx, _) ->
              let config =
                {
                  Rwc_sim.Runner.default_config with
                  Rwc_sim.Runner.days;
                  seed;
                  faults;
                  domains;
                }
              in
              let policies =
                match policy with
                | Some p -> [ p ]
                | None -> Rwc_sim.Runner.all_policies
              in
              let outcomes =
                Rwc_sim.Runner.run_recoverable ~config ~backbone ~ctx
                  ~resume_from:None ~policies ()
              in
              rm_rf_dir dir;
              List.filter_map
                (function
                  | Rwc_sim.Runner.Ran r ->
                      let base = ref_delivered r.Rwc_sim.Runner.policy in
                      let vs =
                        100.0
                        *. (r.Rwc_sim.Runner.delivered_pbit -. base)
                        /. base
                      in
                      Some (rate, ctx.Rwc_recover.restarts, vs, r)
                  | Rwc_sim.Runner.Replayed _ -> None)
                outcomes)
        crash_rates
    end
  in
  (match crash_rows with
  | [] -> ()
  | rows ->
      Printf.printf
        "\ncrash sweep: factor-1.00 plan plus crash=RATE (checkpoint-backed \
         in-process restarts; vs-f1.00 should be +0.000%%)\n";
      Printf.printf "%-7s %8s %-22s %15s %11s\n" "crash" "restarts" "policy"
        "delivered(Pbit)" "vs-f1.00";
      List.iter
        (fun (rate, restarts, vs, r) ->
          Printf.printf "%-7.3f %8d %-22s %15.2f %+10.3f%%\n" rate restarts
            (Rwc_sim.Runner.policy_name r.Rwc_sim.Runner.policy)
            r.Rwc_sim.Runner.delivered_pbit vs)
        rows);
  let row_label factor guarded gated r =
    Printf.sprintf "f%.2f%s%s/%s" factor
      (if guarded then "+guard" else "")
      (if gated then "+rollout" else "")
      (Rwc_sim.Runner.policy_name r.Rwc_sim.Runner.policy)
  in
  (match json_path with
  | None -> ()
  | Some path ->
      (* The machine-readable degradation table (one row per printed
         line), used by the CI chaos smoke step. *)
      let open Obs.Json in
      let rows =
        List.concat_map
          (fun (factor, guarded, gated, reports) ->
            List.map
              (fun r ->
                let rollout_fields =
                  match r.Rwc_sim.Runner.rollout_stats with
                  | None -> []
                  | Some s -> [ ("rollout", Rwc_rollout.stats_to_json s) ]
                in
                Assoc
                  ([
                     ("factor", Float factor);
                     ("guarded", Bool guarded);
                     ("gated", Bool gated);
                     ( "policy",
                       String
                         (Rwc_sim.Runner.policy_name r.Rwc_sim.Runner.policy)
                     );
                     ( "delivered_pbit",
                       Float r.Rwc_sim.Runner.delivered_pbit );
                     ("vs_baseline_pct", Float (degradation_of r));
                   ]
                  @ rollout_fields
                  @ [ ("report", Rwc_sim.Runner.json_of_report r) ]))
              reports)
          sweep
      in
      let crash_fields =
        match crash_rows with
        | [] -> []
        | cr ->
            [
              ( "crash_rows",
                List
                  (List.map
                     (fun (rate, restarts, vs, r) ->
                       Assoc
                         [
                           ("crash", Float rate);
                           ("restarts", Int restarts);
                           ( "policy",
                             String
                               (Rwc_sim.Runner.policy_name
                                  r.Rwc_sim.Runner.policy) );
                           ( "delivered_pbit",
                             Float r.Rwc_sim.Runner.delivered_pbit );
                           ("vs_f1_pct", Float vs);
                           ("report", Rwc_sim.Runner.json_of_report r);
                         ])
                     cr) );
            ]
      in
      to_file path
        (Assoc
           ([
              ("days", Float days);
              ("seed", Int seed);
              ("guard", String (Rwc_guard.to_string guard));
              ("rollout", String (Rwc_rollout.to_string rollout));
              ("rows", List rows);
            ]
           @ crash_fields)));
  match manifest_path with
  | None -> ()
  | Some path ->
      let open Obs.Json in
      let manifest =
        Obs.Manifest.make ~command:"chaos" ~seed
          ~config:
            ([
               ("days", Float days);
               ("factors", List (List.map (fun f -> Float f) factors));
               ( "policy",
                 match policy with
                 | Some p -> String (Rwc_sim.Runner.policy_name p)
                 | None -> Null );
               ("guard", String (Rwc_guard.to_string guard));
               ("rollout", String (Rwc_rollout.to_string rollout));
               ( "backbone",
                 String (Option.value backbone_file ~default:"north-america")
               );
             ]
            @ journal_manifest_fields jnl journal_path slo)
          ~reports:
            (List.concat_map
               (fun (factor, guarded, gated, reports) ->
                 List.map
                   (fun r ->
                     ( row_label factor guarded gated r,
                       Rwc_sim.Runner.json_of_report r ))
                   reports)
               sweep
            @ List.map
                (fun (rate, _, _, r) ->
                  ( Printf.sprintf "crash%.3f/%s" rate
                      (Rwc_sim.Runner.policy_name r.Rwc_sim.Runner.policy),
                    Rwc_sim.Runner.json_of_report r ))
                crash_rows)
          ~metrics:(manifest_metrics ()) ()
      in
      Obs.Manifest.write path manifest

let chaos_days_arg =
  Arg.(
    value & opt float 7.0
    & info [ "days" ] ~docv:"D" ~doc:"Horizon in days per run.")

let factors_arg =
  Arg.(
    value
    & opt_all float [ 0.5; 1.0; 2.0 ]
    & info [ "factor" ] ~docv:"F"
        ~doc:
          "Scale the default plan's rates by $(docv) (repeatable).  The \
           fault-free baseline (factor 0) is always included.")

let chaos_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:
          "Write the degradation table as JSON to $(docv): one row per \
           printed line (factor, guard, policy, delivered, vs-baseline \
           percentage and the full per-run report).")

let chaos_crash_arg =
  Arg.(
    value
    & opt_all float []
    & info [ "crash" ] ~docv:"RATE"
        ~doc:
          "Also sweep controller crashes (repeatable): run the factor-1.00 \
           plan plus $(b,crash=)$(docv), restarting in-process from \
           throwaway checkpoints after each kill.  Recovery is byte-exact, \
           so the printed delivered throughput must match the plain \
           factor-1.00 row.")

let chaos_cmd =
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Sweep fault-injection rates and report throughput degradation")
    Term.(
      const run_chaos $ obs_term $ chaos_days_arg $ sim_seed_arg $ factors_arg
      $ policy_arg $ guard_arg $ rollout_arg $ journal_arg $ slo_arg
      $ backbone_file_arg $ manifest_arg $ chaos_json_arg $ chaos_crash_arg
      $ progress_flag $ domains_arg)

(* ---- explain ----------------------------------------------------------- *)

(* Render a decision journal: the causal timeline of one link, or a
   fleet summary, plus an offline SLO scorecard.  This is the forensic
   half of the paper made interactive — "why did link N end the run at
   X Gbps?" answered from the recorded chain instead of aggregates. *)

module J = Rwc_journal

let pp_journal_record ?(replayed = false) (r : J.record) =
  let detail =
    match r.kind with
    | J.Run_start { policy; seed; horizon_s; n_links } ->
        Printf.sprintf "run      policy=%s seed=%d horizon=%.0fs links=%d"
          policy seed horizon_s n_links
    | J.Observe { snr_db; fresh } ->
        Printf.sprintf "observe  snr=%.2f dB%s" snr_db
          (if fresh then "" else " (stale)")
    | J.Intent { action; from_gbps; to_gbps } ->
        Printf.sprintf "intent   %s %dG -> %dG" (J.action_name action)
          from_gbps to_gbps
    | J.Guard { verdict } -> Printf.sprintf "guard    %s" (J.verdict_name verdict)
    | J.Fault { outcome; attempt } ->
        Printf.sprintf "fault    %s (attempt %d)" (J.outcome_name outcome)
          attempt
    | J.Commit { gbps; up } ->
        Printf.sprintf "commit   %dG %s" gbps (if up then "up" else "dark")
    | J.Outage { up } ->
        Printf.sprintf "outage   %s" (if up then "restored" else "down")
    | J.Anomaly { detector; snr_db } ->
        Printf.sprintf "anomaly  %s alarm, snr=%.2f dB" (J.detector_name detector)
          snr_db
    | J.Rollout { rid; revent; wave; gbps } ->
        let marker =
          match revent with
          | J.R_rolled_back -> "[rolled-back]"
          | _ -> "[rollout]"
        in
        Printf.sprintf "rollout  %s %s rid=%d wave=%d %dG" marker
          (J.rollout_event_name revent) rid wave gbps
  in
  Printf.printf "  t=%12.1f  span=%-6d %s%s\n" r.t r.span detail
    (if replayed then "  [replayed]" else "")

let explain_scorecard cfg seg =
  match J.Slo.of_records cfg seg with
  | Error e ->
      Printf.eprintf "rwc explain: %s\n" e;
      exit 2
  | Ok s ->
      Printf.printf "\nSLO scorecard (plan %s, horizon %.0fs): %d met, %d violated\n"
        (J.Slo.to_string (Some s.J.Slo.config))
        s.J.Slo.horizon_s s.J.Slo.met s.J.Slo.violated;
      Printf.printf "%-5s %12s %10s %10s %12s  %s\n" "link" "avail%" "at-class%"
        "flaps/day" "quarantine%" "violations";
      Array.iter
        (fun (v : J.Slo.link_verdict) ->
          Printf.printf "%-5d %12.3f %10.3f %10.2f %12.3f  %s\n" v.J.Slo.link
            v.J.Slo.measure.J.Slo.availability_pct
            v.J.Slo.measure.J.Slo.class_time_pct
            v.J.Slo.measure.J.Slo.flaps_per_day
            v.J.Slo.measure.J.Slo.quarantine_pct
            (match v.J.Slo.violations with
            | [] -> "ok"
            | vs -> String.concat "; " vs))
        s.J.Slo.links

(* The chain in effect at time [at]: link timelines split into decision
   chains at Observe boundaries (anomaly/outage/commit events belong to
   the chain of the preceding observation).  [events] carries each
   record's global journal ordinal alongside it; [None] when no chain
   has started by [at]. *)
let chain_at events at =
  let starts_chain (_, (r : J.record)) =
    match r.J.kind with J.Observe _ -> true | _ -> false
  in
  let rec split cur acc = function
    | [] -> List.rev (List.rev cur :: acc)
    | r :: rest ->
        if starts_chain r && cur <> [] then split [ r ] (List.rev cur :: acc) rest
        else split (r :: cur) acc rest
  in
  let chains = split [] [] events in
  let chain_start = function
    | [] -> infinity
    | (_, (r : J.record)) :: _ -> r.J.t
  in
  let rec pick best = function
    | [] -> best
    | c :: rest -> if chain_start c <= at then pick (Some c) rest else best
  in
  pick None chains

let run_explain () journal_file run_idx link at recovered strict slo rollout_id
    follow =
  if at <> None && link = None then begin
    prerr_endline "rwc explain: --at requires --link";
    exit 2
  end;
  if at <> None && rollout_id <> None then begin
    prerr_endline "rwc explain: --at cannot be combined with --rollout";
    exit 2
  end;
  (* --rollout ID: keep only the staged-commit chain of that rollout —
     its proposal, waves, gate verdicts and any rollback — dropping the
     per-sample observe/intent noise around it. *)
  let rollout_keep (r : J.record) =
    match rollout_id with
    | None -> true
    | Some rid -> (
        match r.J.kind with
        | J.Rollout { rid = rid'; _ } -> rid' = rid
        | _ -> false)
  in
  if follow then begin
    if at <> None || run_idx <> None || recovered <> None || strict then begin
      prerr_endline
        "rwc explain: --follow cannot be combined with --at, --run, \
         --recovered or --strict";
      exit 2
    end;
    if slo <> None then begin
      prerr_endline "rwc explain: --follow cannot be combined with --slo";
      exit 2
    end;
    let stop = ref false in
    let handler = Sys.Signal_handle (fun _ -> stop := true) in
    Sys.set_signal Sys.sigint handler;
    Sys.set_signal Sys.sigterm handler;
    (* Poll-and-seek tail.  read_from consumes complete lines only, so
       a torn tail (concurrent writer mid-record, or a storm fault)
       stays in the file for the next round instead of being fatal. *)
    let offset = ref 0 in
    while not !stop do
      (match J.read_from journal_file ~offset:!offset with
      | Ok (records, _bad, next) ->
          offset := next;
          List.iter
            (fun (r : J.record) ->
              if rollout_keep r then
                match link with
                | Some id when r.J.link <> id -> ()
                | _ ->
                    if r.J.link >= 0 then Printf.printf "link=%-4d" r.J.link
                    else print_string "run     ";
                    pp_journal_record r)
            records;
          flush stdout
      | Error _ when !offset > 0 ->
          (* The file shrank under us (truncated or rotated — a resume
             does exactly this): start over from the top. *)
          offset := 0
      | Error _ -> () (* not created yet: keep polling *));
      if not !stop then try Unix.sleepf 0.25 with Unix.Unix_error _ -> ()
    done;
    exit 0
  end;
  (* --recovered: the checkpoint directory's resume marks record the
     journal high-water mark each resume (or in-process crash restart)
     replayed from; everything at or past the earliest mark was
     re-emitted by a recovered process. *)
  let mark =
    match recovered with
    | None -> fun _ -> false
    | Some dir -> (
        match Rwc_recover.resume_marks dir with
        | [] ->
            Printf.eprintf
              "rwc explain: --recovered %s: no resume marks (the run was \
               never resumed or restarted)\n"
              dir;
            exit 2
        | marks ->
            let hwm =
              List.fold_left (fun acc (e, _) -> min acc e) max_int marks
            in
            fun i -> i >= hwm)
  in
  match J.read_file ~strict journal_file with
  | Error e ->
      Printf.eprintf "rwc explain: %s: %s\n" journal_file e;
      exit 2
  | Ok ([], _) ->
      Printf.eprintf "rwc explain: %s: empty journal\n" journal_file;
      exit 2
  | Ok (records, _skipped) -> (
      let segs = J.segments records in
      (* Segments partition the record list in order, so a running
         offset recovers each record's global ordinal — the unit the
         checkpoint high-water mark is expressed in. *)
      let indexed_segs =
        let rec go off = function
          | [] -> []
          | s :: rest ->
              List.mapi (fun i r -> (off + i, r)) s
              :: go (off + List.length s) rest
        in
        go 0 segs
      in
      let nseg = List.length segs in
      let idx =
        match run_idx with
        | None -> nseg  (* default: the last run in the file *)
        | Some i when i >= 1 && i <= nseg -> i
        | Some i ->
            Printf.eprintf "rwc explain: --run %d out of range (1..%d)\n" i nseg;
            exit 2
      in
      let seg_pairs = List.nth indexed_segs (idx - 1) in
      let seg = List.map snd seg_pairs in
      (match
         List.find_map
           (function
             | {
                 J.kind = J.Run_start { policy; seed; horizon_s; n_links };
                 _;
               } ->
                 Some (policy, seed, horizon_s, n_links)
             | _ -> None)
           seg
       with
      | Some (policy, seed, horizon_s, n_links) ->
          Printf.printf
            "run %d/%d: policy=%s seed=%d horizon=%.0fs links=%d (%d events)\n"
            idx nseg policy seed horizon_s n_links
            (List.length seg - 1)
      | None ->
          Printf.printf "run %d/%d: headerless segment (%d events)\n" idx nseg
            (List.length seg));
      (match link with
      | Some id -> (
          let events =
            List.filter
              (fun (_, (r : J.record)) -> r.J.link = id && rollout_keep r)
              seg_pairs
          in
          if events = [] then begin
            Printf.eprintf "rwc explain: no events for link %d%s in run %d\n" id
              (match rollout_id with
              | None -> ""
              | Some rid -> Printf.sprintf " (rollout %d)" rid)
              idx;
            exit 1
          end;
          let pp (i, r) = pp_journal_record ~replayed:(mark i) r in
          match at with
          | None ->
              Printf.printf "link %d timeline:\n" id;
              List.iter pp events
          | Some t -> (
              match chain_at events t with
              | None ->
                  let first =
                    match events with (_, r) :: _ -> r.J.t | [] -> 0.0
                  in
                  Printf.eprintf
                    "rwc explain: link %d has no decision chain in effect at \
                     t=%.1f (its first event is at t=%.1f)\n"
                    id t first;
                  exit 1
              | Some chain ->
                  Printf.printf "link %d, decision chain in effect at t=%.1f:\n"
                    id t;
                  List.iter pp chain;
                  let state =
                    List.fold_left
                      (fun acc (_, (r : J.record)) ->
                        if r.J.t <= t then
                          match r.J.kind with
                          | J.Commit { gbps; up } -> Some (gbps, up)
                          | J.Outage { up } -> (
                              match acc with
                              | Some (g, _) -> Some (g, up)
                              | None -> acc)
                          | _ -> acc
                        else acc)
                      None events
                  in
                  (match state with
                  | Some (gbps, up) ->
                      Printf.printf "state at t=%.1f: %dG %s\n" t gbps
                        (if up then "up" else "dark")
                  | None -> Printf.printf "state at t=%.1f: no commit yet\n" t)))
      | None when rollout_id <> None ->
          (* The rollout's full chain across the fleet, in journal
             order: run-scoped lifecycle events interleaved with the
             per-link admissions, commits and rollbacks. *)
          let rid = Option.get rollout_id in
          let events = List.filter (fun (_, r) -> rollout_keep r) seg_pairs in
          if events = [] then begin
            Printf.eprintf "rwc explain: no events for rollout %d in run %d\n"
              rid idx;
            exit 1
          end;
          Printf.printf "rollout %d chain:\n" rid;
          List.iter
            (fun (i, (r : J.record)) ->
              if r.J.link >= 0 then Printf.printf "link=%-4d" r.J.link
              else print_string "run     ";
              pp_journal_record ~replayed:(mark i) r)
            events
      | None ->
          (* Fleet view: one row per link that has events. *)
          let tbl = Hashtbl.create 64 in
          List.iter
            (fun (r : J.record) ->
              if r.J.link >= 0 then begin
                let ev, anom, supp, faults, commit =
                  Option.value
                    (Hashtbl.find_opt tbl r.J.link)
                    ~default:(0, 0, 0, 0, None)
                in
                let anom, supp, faults, commit =
                  match r.J.kind with
                  | J.Anomaly _ -> (anom + 1, supp, faults, commit)
                  | J.Guard { verdict } -> (
                      match verdict with
                      | J.Damped | J.Deferred | J.Stale_data | J.Held ->
                          (anom, supp + 1, faults, commit)
                      | _ -> (anom, supp, faults, commit))
                  | J.Fault { outcome; _ } -> (
                      match outcome with
                      | J.Committed -> (anom, supp, faults, commit)
                      | _ -> (anom, supp, faults + 1, commit))
                  | J.Commit { gbps; up } ->
                      (anom, supp, faults, Some (gbps, up))
                  | _ -> (anom, supp, faults, commit)
                in
                Hashtbl.replace tbl r.J.link (ev + 1, anom, supp, faults, commit)
              end)
            seg;
          let rows =
            List.sort compare
              (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
          in
          Printf.printf "%-5s %7s %7s %10s %7s  %s\n" "link" "events"
            "alarms" "suppressed" "faults" "final";
          List.iter
            (fun (id, (ev, anom, supp, faults, commit)) ->
              Printf.printf "%-5d %7d %7d %10d %7d  %s\n" id ev anom supp
                faults
                (match commit with
                | Some (gbps, up) ->
                    Printf.sprintf "%dG %s" gbps (if up then "up" else "dark")
                | None -> "-"))
            rows);
      match slo with
      | None -> ()
      | Some cfg -> explain_scorecard cfg seg)

let explain_journal_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:"Journal (JSONL) produced by $(b,simulate --journal) or \
              $(b,chaos --journal).")

let explain_run_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "run" ] ~docv:"N"
        ~doc:
          "Pick the $(docv)-th run segment of the file (1-based; default: \
           the last one).")

let explain_link_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "link" ] ~docv:"ID"
        ~doc:
          "Show the causal timeline of this link (duct index).  Without it, \
           a fleet-wide summary table is printed.")

let explain_at_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "at" ] ~docv:"T"
        ~doc:
          "With $(b,--link): show only the decision chain in effect at \
           simulation time $(docv) (seconds), plus the link state then.")

let explain_recovered_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "recovered" ] ~docv:"DIR"
        ~doc:
          "Checkpoint directory of a resumed run: timeline events at or past \
           the earliest recorded resume mark — the ones re-emitted by a \
           resumed or crash-restarted process — are flagged \
           $(b,[replayed]).")

let explain_strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Fail on the first malformed journal line instead of the default \
           skip-and-count (skipped lines are reported on stderr and in the \
           $(b,journal/bad_lines) metric).")

let explain_rollout_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "rollout" ] ~docv:"ID"
        ~doc:
          "Show only the staged-rollout chain with this plan id: its \
           proposal, wave commits, gate verdicts and any $(b,[rolled-back]) \
           events.  Combines with $(b,--link) to restrict the chain to one \
           link, and with $(b,--follow) to tail it live.")

let explain_follow_arg =
  Arg.(
    value & flag
    & info [ "follow" ]
        ~doc:
          "Tail the journal live: print existing events, then poll for new \
           complete lines four times a second (optionally filtered with \
           $(b,--link)).  Torn tails — a record mid-write under a \
           concurrent $(b,simulate) or $(b,serve) — are skipped until \
           their newline lands, and a truncated file restarts the tail \
           from the top.  Stop with Ctrl-C.")

let explain_cmd =
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Reconstruct why links changed capacity from a decision journal")
    Term.(
      const run_explain $ obs_term $ explain_journal_arg $ explain_run_arg
      $ explain_link_arg $ explain_at_arg $ explain_recovered_arg
      $ explain_strict_arg $ slo_arg $ explain_rollout_arg
      $ explain_follow_arg)

(* ---- bvt -------------------------------------------------------------- *)

let run_bvt () changes seed =
  let rng = Rwc_stats.Rng.create seed in
  let measure procedure =
    let t = Rwc_optical.Bvt.create Rwc_optical.Modulation.Qpsk in
    let targets =
      [| Rwc_optical.Modulation.Qam8; Rwc_optical.Modulation.Qam16;
         Rwc_optical.Modulation.Qpsk |]
    in
    Array.init changes (fun i ->
        (Rwc_optical.Bvt.change_modulation t rng ~target:targets.(i mod 3)
           ~procedure)
          .Rwc_optical.Bvt.total_s)
  in
  let report name xs =
    let s = Rwc_stats.Summary.of_array xs in
    Printf.printf "%-10s mean %10.4f s   p50 %10.4f   p95 %10.4f   max %10.4f\n"
      name s.Rwc_stats.Summary.mean
      (Rwc_stats.Summary.percentile xs 50.0)
      (Rwc_stats.Summary.percentile xs 95.0)
      s.Rwc_stats.Summary.max
  in
  Printf.printf "%d modulation changes per procedure (seed %d):\n" changes seed;
  report "stock" (measure Rwc_optical.Bvt.Stock);
  report "efficient" (measure Rwc_optical.Bvt.Efficient)

let changes_arg =
  Arg.(value & opt int 200 & info [ "changes" ] ~docv:"N" ~doc:"Number of changes.")

let bvt_seed_arg =
  Arg.(value & opt int 43 & info [ "seed" ] ~docv:"S" ~doc:"RNG seed.")

let bvt_cmd =
  Cmd.v
    (Cmd.info "bvt" ~doc:"Modulation-change latency experiment (Section 3.1)")
    Term.(const run_bvt $ obs_term $ changes_arg $ bvt_seed_arg)

(* ---- constellation ----------------------------------------------------- *)

let scheme_conv =
  let parse = function
    | "qpsk" -> Ok Rwc_optical.Modulation.Qpsk
    | "8qam" -> Ok Rwc_optical.Modulation.Qam8
    | "16qam" -> Ok Rwc_optical.Modulation.Qam16
    | s -> Error (`Msg (Printf.sprintf "unknown scheme %S (qpsk|8qam|16qam)" s))
  in
  Arg.conv
    ( parse,
      fun fmt s ->
        Format.fprintf fmt "%s" (Rwc_optical.Modulation.scheme_name s) )

let run_constellation () scheme snr symbols seed =
  let rng = Rwc_stats.Rng.create seed in
  let run = Rwc_optical.Constellation.simulate rng scheme ~snr_db:snr ~symbols in
  print_string (Rwc_optical.Constellation.render_ascii run);
  Printf.printf "theoretical SER at this SNR: %.3e\n"
    (Rwc_optical.Constellation.theoretical_ser scheme ~snr_db:snr)

let scheme_arg =
  Arg.(
    value
    & opt scheme_conv Rwc_optical.Modulation.Qam16
    & info [ "scheme" ] ~docv:"SCHEME" ~doc:"qpsk, 8qam or 16qam.")

let snr_arg =
  Arg.(value & opt float 16.0 & info [ "snr" ] ~docv:"DB" ~doc:"Es/N0 in dB.")

let symbols_arg =
  Arg.(value & opt int 800 & info [ "symbols" ] ~docv:"N" ~doc:"Symbols to send.")

let const_seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"RNG seed.")

let constellation_cmd =
  Cmd.v
    (Cmd.info "constellation" ~doc:"Render a constellation panel (Figure 5)")
    Term.(
      const run_constellation $ obs_term $ scheme_arg $ snr_arg $ symbols_arg
      $ const_seed_arg)

(* ---- detect ------------------------------------------------------------ *)

let run_detect () trace_path baseline sigma =
  match Rwc_telemetry.Store.read_trace_csv trace_path with
  | Error e ->
      Printf.eprintf "%s: %s\n" trace_path e;
      exit 2
  | Ok trace ->
      let baseline =
        match baseline with
        | Some b -> b
        | None -> Rwc_stats.Summary.median trace
      in
      let sigma =
        match sigma with
        | Some s -> s
        | None ->
            (* Robust scale from the HDR: width of the 68% interval / 2
               approximates one standard deviation of the quiet core. *)
            Rwc_stats.Hdr.width (Rwc_stats.Hdr.of_samples ~mass:0.68 trace)
            /. 2.0
      in
      Printf.printf "trace %s: %d samples, baseline %.2f dB, sigma %.3f dB\n"
        trace_path (Array.length trace) baseline sigma;
      let alarms =
        Rwc_telemetry.Detect.scan ~baseline_db:baseline ~sigma_db:sigma trace
      in
      if alarms = [] then print_endline "no degradations detected"
      else
        List.iter
          (fun a ->
            Printf.printf "sample %6d (%8.1f h): %s alarm, snr %.2f dB\n"
              a.Rwc_telemetry.Detect.sample
              (float_of_int a.Rwc_telemetry.Detect.sample /. 4.0)
              (match a.Rwc_telemetry.Detect.kind with
              | `Ewma -> "ewma "
              | `Cusum -> "cusum")
              trace.(a.Rwc_telemetry.Detect.sample))
          alarms

let trace_path_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"TRACE.csv" ~doc:"Trace written by the export command.")

let baseline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "baseline" ] ~docv:"DB" ~doc:"Quiet-time SNR level (default: median).")

let sigma_opt_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "sigma" ] ~docv:"DB"
        ~doc:"Quiet-time sample standard deviation (default: robust estimate).")

let detect_cmd =
  Cmd.v
    (Cmd.info "detect" ~doc:"Scan an SNR trace for degradations (CUSUM + EWMA)")
    Term.(
      const run_detect $ obs_term $ trace_path_arg $ baseline_arg
      $ sigma_opt_arg)

(* ---- topology ------------------------------------------------------------ *)

let run_topology () path =
  match Rwc_topology.Parser.parse_file path with
  | Error e ->
      Printf.eprintf "%s: %s\n" path e;
      exit 2
  | Ok t ->
      Printf.printf "%s: %d cities, %d ducts\n" path
        (Rwc_topology.Backbone.n_cities t)
        (Array.length t.Rwc_topology.Backbone.ducts);
      Printf.printf "%-14s %-14s %8s %9s %10s\n" "a" "b" "km" "osnr(dB)"
        "max-rate";
      Array.iter
        (fun d ->
          let line =
            Rwc_optical.Fiber.line_of_route_km d.Rwc_topology.Backbone.route_km
          in
          let osnr = Rwc_optical.Fiber.osnr_db line in
          let snr = osnr -. Rwc_telemetry.Fleet.osnr_to_snr_penalty_db in
          Printf.printf "%-14s %-14s %8.0f %9.1f %7d G\n"
            t.Rwc_topology.Backbone.cities.(d.Rwc_topology.Backbone.a)
              .Rwc_topology.Backbone.name
            t.Rwc_topology.Backbone.cities.(d.Rwc_topology.Backbone.b)
              .Rwc_topology.Backbone.name
            d.Rwc_topology.Backbone.route_km osnr
            (Rwc_optical.Modulation.feasible_gbps snr))
        t.Rwc_topology.Backbone.ducts

let topology_path_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"TOPOLOGY" ~doc:"Topology file (see Parser docs for the format).")

let topology_cmd =
  Cmd.v
    (Cmd.info "topology"
       ~doc:"Validate a topology file and report per-duct feasible rates")
    Term.(const run_topology $ obs_term $ topology_path_arg)

(* ---- export ------------------------------------------------------------ *)

let run_export () dir cables years seed max_links =
  ensure_dir "export" dir;
  let fleet = fleet_of ~cables ~years ~seed in
  let n = Rwc_telemetry.Store.export_fleet_csv ?max_links fleet ~dir in
  let open Obs.Json in
  Obs.Manifest.write
    (Filename.concat dir "manifest.json")
    (Obs.Manifest.make ~command:"export" ~seed
       ~config:
         [
           ("cables", Int cables);
           ("years", Float years);
           ( "max_links",
             match max_links with Some m -> Int m | None -> Null );
         ]
       ~reports:[ ("traces_written", Int n) ]
       ~metrics:(manifest_metrics ()) ());
  Printf.printf "wrote %d trace files plus manifest.csv and manifest.json under %s\n"
    n dir

let export_dir_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Directory to write CSVs into (created if missing).")

let max_links_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-links" ] ~docv:"N" ~doc:"Stop after N traces.")

let export_cmd =
  Cmd.v
    (Cmd.info "export"
       ~doc:"Generate the telemetry fleet and write it out as CSV files")
    Term.(
      const run_export $ obs_term $ export_dir_arg $ cables_arg $ years_arg
      $ seed_arg $ max_links_arg)

(* ---- bench / perf ------------------------------------------------------ *)

(* The perf sweep and trajectory diff.  `bench` deliberately does not
   compose [obs_term]: the sweep arms the profiler and the metrics
   registry itself (and restores both), and a user-armed registry
   would double-count the warm-up runs into the snapshot. *)

module Perf = Rwc_perf

let run_bench quick hyperscale sizes days seed label out progress domains
    domains_sweep =
  if quick && hyperscale then begin
    prerr_endline "rwc bench: --quick and --hyperscale are mutually exclusive";
    exit 2
  end;
  let base =
    if hyperscale then Rwc_sim.Perf_sweep.hyperscale
    else if quick then Rwc_sim.Perf_sweep.quick
    else Rwc_sim.Perf_sweep.full
  in
  let label =
    match label with Some l -> l | None -> base.Rwc_sim.Perf_sweep.label
  in
  let opts =
    {
      base with
      Rwc_sim.Perf_sweep.sizes =
        (match sizes with
        | Some s -> List.sort_uniq compare s
        | None -> base.Rwc_sim.Perf_sweep.sizes);
      days = Option.value days ~default:base.Rwc_sim.Perf_sweep.days;
      seed;
      label;
      progress;
      domains = clamp_domains "rwc bench" domains;
    }
  in
  if List.exists (fun n -> n < 8) opts.Rwc_sim.Perf_sweep.sizes then begin
    prerr_endline "rwc bench: --sizes entries must be >= 8 ducts";
    exit 2
  end;
  if opts.Rwc_sim.Perf_sweep.days <= 0.0 then begin
    prerr_endline "rwc bench: --days must be positive";
    exit 2
  end;
  let run_one opts out =
    check_writable "--out" out;
    let t = Rwc_sim.Perf_sweep.run opts in
    Perf.Trajectory.write out t;
    Format.printf "%a" Perf.Trajectory.pp t;
    Printf.printf "wrote %s\n" out
  in
  match domains_sweep with
  | None ->
      let out =
        Option.value out ~default:(Printf.sprintf "BENCH_%s.json" label)
      in
      run_one opts out
  | Some counts ->
      (* One trajectory per domain count, named BENCH_<label>-d<N>.json
         so `rwc perf diff --cross-domains` can compare any pair. *)
      if out <> None then begin
        prerr_endline
          "rwc bench: --out conflicts with --domains-sweep (each count gets \
           its own BENCH_<label>-d<N>.json)";
        exit 2
      end;
      let counts =
        List.sort_uniq compare
          (List.map (clamp_domains "rwc bench") counts)
      in
      List.iter
        (fun d ->
          let label_d = Printf.sprintf "%s-d%d" label d in
          run_one
            { opts with Rwc_sim.Perf_sweep.label = label_d; domains = d }
            (Printf.sprintf "BENCH_%s.json" label_d))
        counts

let sizes_arg =
  Arg.(
    value
    & opt (some (list int)) None
    & info [ "sizes" ] ~docv:"N,N,..."
        ~doc:"Fleet sizes (ducts) to sweep, overriding the preset.")

let bench_days_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "days" ] ~docv:"D"
        ~doc:"Sim horizon per sweep point (preset: 1 day).")

let bench_quick_flag =
  Arg.(
    value & flag
    & info [ "quick" ]
        ~doc:
          "CI preset: sizes 50,200 instead of 50,200,1000,2000 — seconds \
           instead of minutes.")

let bench_hyperscale_flag =
  Arg.(
    value & flag
    & info [ "hyperscale" ]
        ~doc:
          "Hyperscale preset: one 50000-duct point over a short horizon \
           with TE throttled (24-hour interval, 4 demands) so the fleet \
           phases — telemetry generation and the observe pass, the parts \
           $(b,--domains) parallelizes — dominate the wall time.")

let bench_domains_sweep_arg =
  Arg.(
    value
    & opt (some (list int)) None
    & info [ "domains-sweep" ] ~docv:"N,N,..."
        ~doc:
          "Run the whole sweep once per domain count and emit one \
           trajectory per count as $(b,BENCH_<label>-d<N>.json).  \
           Conflicts with $(b,--out); compare the results with \
           $(b,rwc perf diff --cross-domains).")

let bench_label_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "label" ] ~docv:"L"
        ~doc:
          "Trajectory label, also the default output name \
           $(b,BENCH_<label>.json).  Default: $(b,quick) or $(b,full) per \
           the preset.")

let bench_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out"; "o" ] ~docv:"PATH"
        ~doc:"Output path (default $(b,BENCH_<label>.json)).")

let bench_cmd =
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Deterministic fleet-size perf sweep; emits a machine-readable \
          BENCH_<label>.json trajectory (per-phase p50/p95 timings, \
          events/s, solver-time-vs-fleet-size, peak heap)")
    Term.(
      const run_bench $ bench_quick_flag $ bench_hyperscale_flag $ sizes_arg
      $ bench_days_arg $ sim_seed_arg $ bench_label_arg $ bench_out_arg
      $ progress_flag $ domains_arg $ bench_domains_sweep_arg)

let run_perf_diff old_path new_path ci_tol cross_domains =
  let read path =
    match Perf.Trajectory.read path with
    | Ok t -> t
    | Error e ->
        Printf.eprintf "rwc perf diff: %s\n" e;
        exit 2
  in
  let old_t = read old_path and new_t = read new_path in
  let tol = if ci_tol then Perf.Diff.ci else Perf.Diff.default in
  match Perf.Diff.compare ~tol ~cross_domains old_t new_t with
  | Error e ->
      Printf.eprintf "rwc perf diff: %s\n" e;
      exit 2
  | Ok findings ->
      Format.printf "%a" Perf.Diff.render findings;
      (match Perf.Diff.worst findings with
      | Perf.Diff.Fail -> exit 1
      | Perf.Diff.Warn | Perf.Diff.Pass -> ())

let perf_old_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"OLD" ~doc:"Baseline trajectory (BENCH_*.json).")

let perf_new_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"NEW" ~doc:"Candidate trajectory to compare.")

let perf_ci_flag =
  Arg.(
    value & flag
    & info [ "ci" ]
        ~doc:
          "Use the generous shared-runner tolerances (timings several \
           hundred percent; counts and allocation stay tight) instead of \
           the like-for-like defaults.")

let perf_cross_domains_flag =
  Arg.(
    value & flag
    & info [ "cross-domains" ]
        ~doc:
          "Allow comparing trajectories recorded with different \
           $(b,--domains) widths.  Refused by default: wall-time deltas \
           between different widths measure parallel speedup, not \
           regressions.")

let perf_diff_cmd =
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two BENCH_*.json trajectories; exits 1 when any metric \
          regresses past tolerance")
    Term.(
      const run_perf_diff $ perf_old_arg $ perf_new_arg $ perf_ci_flag
      $ perf_cross_domains_flag)

let perf_cmd =
  Cmd.group
    (Cmd.info "perf" ~doc:"Perf-trajectory tooling (see also $(b,rwc bench))")
    [ perf_diff_cmd ]

(* ---- fsck -------------------------------------------------------------- *)

let run_fsck () journal checkpoints dry_run json_path =
  if journal = None && checkpoints = None then begin
    prerr_endline
      "rwc fsck: nothing to check (pass --journal FILE and/or --checkpoints \
       DIR)";
    exit 2
  end;
  Option.iter (check_writable "--json") json_path;
  match Rwc_fsck.scan ~repair:(not dry_run) ?journal ?checkpoints () with
  | Error e ->
      Printf.eprintf "rwc fsck: %s\n" e;
      exit 2
  | Ok report ->
      Format.printf "%a" Rwc_fsck.pp_report report;
      Option.iter
        (fun p -> Obs.Json.to_file p (Rwc_fsck.report_to_json report))
        json_path;
      if Rwc_fsck.unrepaired report > 0 then exit 1

let fsck_journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Decision journal to check: a damaged tail (torn final line from a \
           crashed writer) is truncated back to the last valid line, \
           atomically.  Interior bad lines are reported but left in place — \
           readers skip and count them.")

let fsck_checkpoints_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoints" ] ~docv:"DIR"
        ~doc:
          "Checkpoint directory to check: orphaned $(b,*.tmp) files are \
           removed and checkpoints failing CRC/version/JSON validation are \
           quarantined to $(b,*.corrupt), dropping them from the resume \
           fallback chain.")

let fsck_dry_run_flag =
  Arg.(
    value & flag
    & info [ "dry-run"; "n" ]
        ~doc:"Report findings without touching anything.")

let fsck_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:
          "Write the machine-readable repair report (schema \
           $(b,rwc-fsck/1)) to $(docv).")

let fsck_cmd =
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Detect and repair storage damage in durable run artifacts \
          (journals, checkpoint directories); exits 1 when unrepairable \
          findings remain")
    Term.(
      const run_fsck $ obs_term $ fsck_journal_arg $ fsck_checkpoints_arg
      $ fsck_dry_run_flag $ fsck_json_arg)

(* ---- torture ----------------------------------------------------------- *)

let run_torture () days ducts seed every quick sample keep rollout json_path =
  Option.iter (check_writable "--json") json_path;
  let sample =
    match sample with
    | Some n when n < 1 ->
        prerr_endline "rwc torture: --sample must be >= 1";
        exit 2
    | Some _ as s -> s
    | None -> if quick then Some 8 else None
  in
  let root = fresh_temp_dir "rwc-torture" in
  let cleanup () =
    if keep then Printf.printf "torture artifacts kept in %s\n" root
    else rm_rf_dir root
  in
  match
    Rwc_sim.Torture.run ~days ~ducts ~seed ~every ~rollout ?sample ~root ()
  with
  | Error e ->
      Printf.eprintf "rwc torture: %s\n" e;
      cleanup ();
      exit 2
  | exception e ->
      Printf.eprintf "rwc torture: %s\n" (Printexc.to_string e);
      cleanup ();
      exit 2
  | Ok s ->
      List.iter
        (fun c ->
          let open Rwc_sim.Torture in
          if not c.ok then
            Printf.printf "boundary %3d (%s): FAIL — %s\n" c.ordinal c.kind
              c.detail
          else
            Printf.printf "boundary %3d (%s): ok (%d repaired)\n" c.ordinal
              c.kind c.findings)
        s.Rwc_sim.Torture.cases;
      Printf.printf
        "torture: %d boundaries, %d killed, %d recovered byte-identical, %d \
         failed\n"
        s.Rwc_sim.Torture.boundaries
        (List.length s.Rwc_sim.Torture.cases)
        s.Rwc_sim.Torture.passed s.Rwc_sim.Torture.failed;
      Option.iter
        (fun p -> Obs.Json.to_file p (Rwc_sim.Torture.summary_to_json s))
        json_path;
      cleanup ();
      if s.Rwc_sim.Torture.failed > 0 then exit 1

let torture_days_arg =
  Arg.(
    value & opt float 0.25
    & info [ "days" ] ~docv:"D" ~doc:"Horizon of the tortured run in days.")

let torture_ducts_arg =
  Arg.(
    value & opt int 12
    & info [ "ducts" ] ~docv:"N"
        ~doc:"Size of the synthetic backbone the run is driven over.")

let torture_every_arg =
  Arg.(
    value & opt int 8
    & info [ "every" ] ~docv:"N"
        ~doc:"Checkpoint cadence in telemetry sweeps.")

let torture_quick_flag =
  Arg.(
    value & flag
    & info [ "quick" ]
        ~doc:
          "Kill at ~8 evenly-spaced boundaries (including the first and \
           last) instead of every one — the CI smoke mode.  Overridden by \
           $(b,--sample).")

let torture_sample_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "sample" ] ~docv:"N"
        ~doc:
          "Kill at $(docv) evenly-spaced boundaries instead of every one.")

let torture_keep_flag =
  Arg.(
    value & flag
    & info [ "keep" ]
        ~doc:
          "Keep the scratch directory (golden journal, per-kill artifacts) \
           instead of deleting it; its path is printed.")

let torture_rollout_arg =
  Arg.(
    value
    & opt rollout_conv Rwc_rollout.none
    & info [ "rollout" ] ~docv:"PLAN"
        ~doc:
          "Arm a staged-rollout plan (same grammar as $(b,simulate \
           --rollout)) in the tortured run, so kill points land mid-wave \
           and mid-bake and recovery must replay the same gate verdicts \
           and rollbacks byte-identically.")

let torture_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:
          "Write the machine-readable per-boundary summary (schema \
           $(b,rwc-torture/1)) to $(docv).")

let torture_cmd =
  Cmd.v
    (Cmd.info "torture"
       ~doc:
         "Crash-point torture: kill a seeded run at every storage boundary \
          (write/sync/rename), repair with fsck, resume, and demand the \
          recovered report and journal are byte-identical to a crash-free \
          run")
    Term.(
      const run_torture $ obs_term $ torture_days_arg $ torture_ducts_arg
      $ sim_seed_arg $ torture_every_arg $ torture_quick_flag
      $ torture_sample_arg $ torture_keep_flag $ torture_rollout_arg
      $ torture_json_arg)

(* ---- serve / watch ----------------------------------------------------- *)

(* The live control-plane daemon: the same run [simulate] performs,
   with a JSON-RPC window onto it.  The simulation is the source of
   truth; the daemon only reads (and previews what-ifs on reverted
   state), so a seeded serve run's report and journal are byte-identical
   to the batch run's. *)

let run_serve () days policy seed faults guard rollout journal_path slo
    backbone_file checkpoint checkpoint_every resume progress domains
    socket_path stdio metrics_interval max_queue =
  let domains = clamp_domains "rwc serve" domains in
  let journal_path =
    match journal_path with
    | Some p -> p
    | None ->
        prerr_endline
          "rwc serve: --journal FILE is required (the journal is the \
           subscribers' catch-up log)";
        exit 2
  in
  let mode =
    match (socket_path, stdio) with
    | Some p, false -> Rwc_serve.Daemon.Socket p
    | None, true -> Rwc_serve.Daemon.Stdio
    | None, false ->
        prerr_endline "rwc serve: pass --socket PATH or --stdio";
        exit 2
    | Some _, true ->
        prerr_endline "rwc serve: --socket and --stdio are mutually exclusive";
        exit 2
  in
  if metrics_interval <= 0 then begin
    prerr_endline "rwc serve: --metrics-interval must be >= 1";
    exit 2
  end;
  if max_queue <= 0 then begin
    prerr_endline "rwc serve: --max-queue must be >= 1";
    exit 2
  end;
  if Rwc_recover.plan_has_crash faults then begin
    prerr_endline
      "rwc serve: crash= fault rules are not supported (the in-process \
       restart would swap the journal out from under the live stream); \
       stopping the daemon and rerunning with --resume is its crash story";
    exit 2
  end;
  if resume && checkpoint = None then begin
    prerr_endline "rwc serve: --resume requires --checkpoint DIR";
    exit 2
  end;
  if checkpoint <> None && checkpoint_every <= 0 then begin
    prerr_endline "rwc serve: --checkpoint-every must be >= 1";
    exit 2
  end;
  (* The metrics topic streams registry deltas; make sure the registry
     counts even when the operator did not pass --metrics. *)
  Obs.Metrics.enable ();
  let backbone = backbone_of backbone_file in
  let policies =
    match policy with Some p -> [ p ] | None -> Rwc_sim.Runner.all_policies
  in
  let config_of jnl =
    {
      Rwc_sim.Runner.default_config with
      Rwc_sim.Runner.days;
      seed;
      faults;
      guard;
      rollout;
      journal = jnl;
      progress;
      domains;
    }
  in
  match checkpoint with
  | None ->
      let jnl = journal_sink (Some journal_path) slo in
      exit
        (Rwc_serve.Daemon.serve ~mode ~metrics_interval ~max_queue
           ~config:(config_of jnl) ~backbone ~policies ~journal_path ~slo
           ~run_mode:Rwc_serve.Daemon.Fresh ())
  | Some dir -> (
      match
        Rwc_recover.create ~dir ~every:checkpoint_every ~journal_path ~slo
          ~faults ~resume ()
      with
      | Error e ->
          Printf.eprintf "rwc serve: --checkpoint %s: %s\n" dir e;
          exit 2
      | Ok (ctx, resume_from) ->
          (match resume_from with
          | Some c ->
              if c.Rwc_recover.ck_seed <> seed || c.Rwc_recover.ck_days <> days
              then begin
                Printf.eprintf
                  "rwc serve: --resume: checkpoint in %s belongs to a run \
                   with seed %d over %g days, not seed %d over %g days\n"
                  dir c.Rwc_recover.ck_seed c.Rwc_recover.ck_days seed days;
                exit 2
              end
          | None ->
              if resume then
                Printf.eprintf
                  "rwc serve: --resume: no valid checkpoint in %s; starting \
                   from scratch\n%!"
                  dir);
          let jnl =
            match resume_from with
            | Some c -> (
                match
                  Rwc_journal.resume ~path:journal_path ~slo
                    ~at:c.Rwc_recover.ck_journal_bytes
                    ~events:c.Rwc_recover.ck_journal_events ()
                with
                | Ok j -> j
                | Error e ->
                    Printf.eprintf "rwc serve: --resume: %s: %s\n" journal_path
                      e;
                    exit 2)
            | None -> journal_sink (Some journal_path) slo
          in
          exit
            (Rwc_serve.Daemon.serve ~mode ~metrics_interval ~max_queue
               ~config:(config_of jnl) ~backbone ~policies ~journal_path ~slo
               ~run_mode:(Rwc_serve.Daemon.Checkpointed (ctx, resume_from)) ()))

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix socket to listen on (serve) or connect to (watch).")

let stdio_flag =
  Arg.(
    value & flag
    & info [ "stdio" ]
        ~doc:
          "Speak JSON-RPC on stdin/stdout instead of a socket (reports then \
           only appear via $(b,fleet.status)).")

let serve_metrics_interval_arg =
  Arg.(
    value & opt int 96
    & info [ "metrics-interval" ] ~docv:"N"
        ~doc:
          "Telemetry sweeps between streamed metric deltas and online SLO \
           verdicts (default 96: one simulated day).")

let serve_max_queue_arg =
  Arg.(
    value & opt int 256
    & info [ "max-queue" ] ~docv:"N"
        ~doc:
          "Default per-subscriber event queue bound; a slow consumer's \
           overflow is dropped and counted ($(b,serve/dropped_events)).")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Live control-plane daemon: run the simulation and serve telemetry \
          streams, decision events, SLO verdicts and what-if queries over \
          JSON-RPC")
    Term.(
      const run_serve $ obs_term $ days_arg $ policy_arg $ sim_seed_arg
      $ faults_arg $ guard_arg $ rollout_arg $ journal_arg $ slo_arg
      $ backbone_file_arg $ checkpoint_arg $ checkpoint_every_arg $ resume_flag
      $ progress_flag $ domains_arg $ socket_arg $ stdio_flag
      $ serve_metrics_interval_arg $ serve_max_queue_arg)

(* watch: thin client over the serve socket — one-shot RPCs, a raw
   JSONL event tail, or a live fleet table. *)

let run_watch () socket_path raw from topics max_queue max_events rpc_meth
    rpc_params progress =
  let socket_path =
    match socket_path with
    | Some p -> p
    | None ->
        prerr_endline "rwc watch: --socket PATH is required";
        exit 2
  in
  let module C = Rwc_serve.Daemon.Client in
  let client =
    (* The daemon may still be binding its socket: retry briefly. *)
    let rec conn tries =
      match C.connect socket_path with
      | c -> c
      | exception Unix.Unix_error (e, _, _) ->
          if tries > 0 then begin
            (try Unix.sleepf 0.25 with Unix.Unix_error _ -> ());
            conn (tries - 1)
          end
          else begin
            Printf.eprintf "rwc watch: %s: %s\n" socket_path
              (Unix.error_message e);
            exit 2
          end
    in
    conn 20
  in
  let fail msg =
    Printf.eprintf "rwc watch: %s\n" msg;
    C.close client;
    exit 1
  in
  match rpc_meth with
  | Some meth -> (
      let params =
        match rpc_params with
        | None -> None
        | Some s -> (
            match Obs.Json.parse s with
            | Ok j -> Some j
            | Error e ->
                Printf.eprintf "rwc watch: --params: %s\n" e;
                exit 2)
      in
      match C.call client ~meth ?params () with
      | Ok r ->
          print_endline (Obs.Json.to_string r);
          C.close client
      | Error e -> fail e)
  | None ->
      let tbl = Hashtbl.create 64 in
      let policy = ref "-" in
      (* Table base state before subscribing, so the replayed/live
         events only ever move the view forward.  Factored out because a
         reconnect after a daemon restart must re-seed the table too. *)
      let load_status client =
        match C.call client ~meth:"fleet.status" () with
        | Error e -> Error e
        | Ok status ->
            (match Obs.Json.member "policy" status with
            | Some (Obs.Json.String p) -> policy := p
            | _ -> ());
            (match Obs.Json.member "links" status with
            | Some (Obs.Json.List l) ->
                List.iter
                  (fun row ->
                    match
                      ( Obs.Json.member "link" row,
                        Obs.Json.member "gbps" row,
                        Obs.Json.member "up" row,
                        Obs.Json.member "snr_db" row )
                    with
                    | ( Some (Obs.Json.Int id),
                        Some (Obs.Json.Int g),
                        Some (Obs.Json.Bool up),
                        Some (Obs.Json.Float s) ) ->
                        Hashtbl.replace tbl id (g, up, s)
                    | _ -> ())
                  l
            | _ -> ());
            Ok ()
      in
      (* [replay:false] after a reconnect: the restarted daemon's journal
         replay would double-count events the table already absorbed, so
         a resumed subscription is live-only. *)
      let subscribe client ~replay =
        let params =
          Obs.Json.Assoc
            ((match topics with
             | [] -> []
             | ts ->
                 [
                   ( "topics",
                     Obs.Json.List (List.map (fun s -> Obs.Json.String s) ts)
                   );
                 ])
            @ (match if replay then from else None with
              | Some n -> [ ("from", Obs.Json.Int n) ]
              | None -> [])
            @
            match max_queue with
            | Some n -> [ ("max_queue", Obs.Json.Int n) ]
            | None -> [])
        in
        match C.call client ~meth:"stream.subscribe" ~params () with
        | Ok _ -> Ok ()
        | Error e -> Error e
      in
      (match load_status client with Ok () -> () | Error e -> fail e);
      (match subscribe client ~replay:true with
      | Ok () -> ()
      | Error e -> fail e);
      let hb =
        if progress then
          Some (Rwc_perf.Progress.create ~label:"watch" ~total_days:0.0 ())
        else None
      in
      let tty = try Unix.isatty Unix.stdout with Unix.Unix_error _ -> false in
      let now = ref 0.0 in
      let slo_line = ref "" in
      let n_events = ref 0 in
      let last_draw = ref 0.0 in
      let redraw ~force () =
        let t = Unix.gettimeofday () in
        if force || t -. !last_draw >= 0.5 then begin
          last_draw := t;
          if tty then print_string "\027[H\027[2J" else print_newline ();
          Printf.printf "fleet @ t=%.0fs  policy=%s  events=%d%s\n" !now
            !policy !n_events
            (if !slo_line = "" then "" else "  slo: " ^ !slo_line);
          Printf.printf "%-5s %6s %-5s %8s\n" "link" "gbps" "up" "snr_db";
          List.iter
            (fun (id, (g, up, s)) ->
              Printf.printf "%-5d %6d %-5s %8.2f\n" id g
                (if up then "up" else "dark")
                s)
            (List.sort compare
               (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []));
          flush stdout
        end
      in
      let int_of j = match j with Some (Obs.Json.Int n) -> Some n | _ -> None in
      let handle env =
        if raw then begin
          (* Line-buffered even into a pipe: this is a live tail. *)
          print_endline (Obs.Json.to_string env);
          flush stdout
        end
        else begin
          (match (Obs.Json.member "topic" env, Obs.Json.member "data" env) with
          | Some (Obs.Json.String "decision"), Some data -> (
              (match Obs.Json.member "t" data with
              | Some (Obs.Json.Float t) -> now := t
              | Some (Obs.Json.Int t) -> now := float_of_int t
              | _ -> ());
              match (int_of (Obs.Json.member "link" data), Obs.Json.member "ev" data) with
              | Some id, Some (Obs.Json.String "commit") -> (
                  match
                    (int_of (Obs.Json.member "gbps" data),
                     Obs.Json.member "up" data)
                  with
                  | Some g, Some (Obs.Json.Bool up) ->
                      let _, _, snr =
                        Option.value (Hashtbl.find_opt tbl id)
                          ~default:(0, false, 0.0)
                      in
                      Hashtbl.replace tbl id (g, up, snr)
                  | _ -> ())
              | Some id, Some (Obs.Json.String "outage") -> (
                  match Obs.Json.member "up" data with
                  | Some (Obs.Json.Bool up) ->
                      let g, _, snr =
                        Option.value (Hashtbl.find_opt tbl id)
                          ~default:(0, false, 0.0)
                      in
                      Hashtbl.replace tbl id (g, up, snr)
                  | _ -> ())
              | Some id, Some (Obs.Json.String "observe") -> (
                  match Obs.Json.member "snr_db" data with
                  | Some (Obs.Json.Float s) ->
                      let g, up, _ =
                        Option.value (Hashtbl.find_opt tbl id)
                          ~default:(0, false, 0.0)
                      in
                      Hashtbl.replace tbl id (g, up, s)
                  | _ -> ())
              | _, Some (Obs.Json.String "run") -> (
                  match Obs.Json.member "policy" data with
                  | Some (Obs.Json.String p) -> policy := p
                  | _ -> ())
              | _ -> ())
          | Some (Obs.Json.String "lifecycle"), Some data -> (
              match
                (Obs.Json.member "event" data, Obs.Json.member "policy" data)
              with
              | Some (Obs.Json.String "run-start"), Some (Obs.Json.String p) ->
                  policy := p
              | _ -> ())
          | Some (Obs.Json.String "slo"), Some data -> (
              match Obs.Json.member "scorecard" data with
              | Some card -> (
                  match
                    ( int_of (Obs.Json.member "links_met" card),
                      int_of (Obs.Json.member "links_violated" card) )
                  with
                  | Some met, Some violated ->
                      slo_line :=
                        Printf.sprintf "%d met / %d violated" met violated
                  | _ -> ())
              | None -> ())
          | _ -> ());
          redraw ~force:false ()
        end
      in
      (* A dropped stream (daemon restart, upgrade, transient socket
         error) is survivable: retry the connect on the orchestrator's
         capped exponential backoff schedule before giving up. *)
      let rp = Rwc_sim.Orchestrator.default_reconnect_policy in
      let reconnect () =
        let rec go attempt =
          if attempt > rp.Rwc_sim.Orchestrator.max_attempts then None
          else begin
            let delay = Rwc_sim.Orchestrator.backoff_delay rp ~attempt in
            (try Unix.sleepf delay with Unix.Unix_error _ -> ());
            match C.connect socket_path with
            | c -> Some c
            | exception Unix.Unix_error _ -> go (attempt + 1)
          end
        in
        go 1
      in
      let rec loop client =
        if match max_events with Some m -> !n_events < m | None -> true then
          match C.recv client with
          | Error e -> (
              C.close client;
              Printf.eprintf
                "rwc watch: %s: stream dropped (%s); reconnecting...\n%!"
                socket_path e;
              match reconnect () with
              | None ->
                  if not raw then redraw ~force:true ();
                  Printf.eprintf
                    "rwc watch: %s: gave up after %d reconnect attempts\n"
                    socket_path rp.Rwc_sim.Orchestrator.max_attempts;
                  None
              | Some client -> (
                  Printf.eprintf "rwc watch: %s: reconnected\n%!" socket_path;
                  match
                    Result.bind (load_status client) (fun () ->
                        subscribe client ~replay:false)
                  with
                  | Ok () -> loop client
                  | Error e ->
                      Printf.eprintf "rwc watch: %s\n" e;
                      Some client))
          | Ok msg -> (
              match
                (Obs.Json.member "method" msg, Obs.Json.member "params" msg)
              with
              | Some (Obs.Json.String "stream.event"), Some env ->
                  incr n_events;
                  handle env;
                  (match hb with
                  | Some p ->
                      Rwc_perf.Progress.tick p ~day:0.0 ~events:!n_events
                  | None -> ());
                  loop client
              | _ -> loop client)
        else Some client
      in
      let last = loop client in
      (match hb with Some p -> Rwc_perf.Progress.finish p | None -> ());
      match last with Some c -> C.close c | None -> ()

let watch_raw_flag =
  Arg.(
    value & flag
    & info [ "raw" ]
        ~doc:
          "Print each stream event as one JSON line instead of the live \
           fleet table.")

let watch_from_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "from" ] ~docv:"SEQ"
        ~doc:
          "Catch up first: replay journal decision events with ordinal >= \
           $(docv) (0 = the whole journal) before the live stream.")

let watch_topics_arg =
  Arg.(
    value & opt (list string) []
    & info [ "topics" ] ~docv:"T,.."
        ~doc:
          "Comma-separated topic filter: decision, metrics, slo, lifecycle \
           (default: all).")

let watch_max_queue_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-queue" ] ~docv:"N"
        ~doc:"Server-side queue bound for this subscription.")

let watch_max_events_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-events" ] ~docv:"N"
        ~doc:"Exit after receiving $(docv) stream events.")

let watch_rpc_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "rpc" ] ~docv:"METHOD"
        ~doc:
          "One-shot mode: call $(docv) (with $(b,--params)), print the \
           result as JSON and exit.")

let watch_params_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "params" ] ~docv:"JSON"
        ~doc:"Parameters for $(b,--rpc), as a JSON object.")

let watch_cmd =
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Thin client for a running $(b,rwc serve): live fleet table, raw \
          event tail, or one-shot RPCs.  Streaming modes survive daemon \
          restarts: a dropped socket is re-dialed with capped exponential \
          backoff (noticed on stderr) before the client gives up")
    Term.(
      const run_watch $ obs_term $ socket_arg $ watch_raw_flag $ watch_from_arg
      $ watch_topics_arg $ watch_max_queue_arg $ watch_max_events_arg
      $ watch_rpc_arg $ watch_params_arg $ progress_flag)

(* ---- main -------------------------------------------------------------- *)

let () =
  let doc = "Run, Walk, Crawl: dynamic link capacities (HotNets'17) reproduction" in
  let info = Cmd.info "rwc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            figures_cmd; analyze_cmd; simulate_cmd; chaos_cmd; explain_cmd;
            serve_cmd; watch_cmd; bvt_cmd; constellation_cmd; export_cmd;
            detect_cmd; topology_cmd; bench_cmd; perf_cmd; torture_cmd;
            fsck_cmd;
          ]))

#!/bin/sh
# Tier-1 CI: build, tests, and an instrumented smoke run.
#
#   bin/ci.sh
#
# Fails on: any build error, any warning touching lib/obs (the
# observability library is held to a warning-free standard), any test
# failure, or a non-zero exit from the instrumented smoke simulation.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @check =="
dune build @check

echo "== dune build (warnings fatal in lib/obs) =="
log=$(mktemp)
trap 'rm -f "$log"' EXIT
dune build @all 2>&1 | tee "$log"
if grep -A1 'Warning' "$log" | grep -q 'lib/obs'; then
  echo "FAIL: warnings in lib/obs" >&2
  exit 1
fi
if grep -B2 'Warning' "$log" | grep -q 'lib/obs'; then
  echo "FAIL: warnings in lib/obs" >&2
  exit 1
fi

echo "== dune runtest =="
dune runtest

echo "== instrumented smoke: rwc simulate --days 2 --metrics /dev/null =="
dune exec bin/rwc.exe -- simulate --days 2 --metrics /dev/null

echo "== ci.sh: all green =="

#!/bin/sh
# Tier-1 CI: build, tests, and instrumented smoke runs.
#
#   bin/ci.sh
#
# Fails on: any build error, any test failure, or a non-zero exit from
# either smoke simulation.  lib/obs and lib/fault are held to a
# warning-free standard via `-warn-error +a` in their dune stanzas, so
# a warning there IS a build error — no log scraping needed.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @check =="
dune build @check

echo "== dune build @all (warnings fatal in lib/obs and lib/fault) =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== instrumented smoke: rwc simulate --days 2 --metrics /dev/null =="
dune exec bin/rwc.exe -- simulate --days 2 --metrics /dev/null

echo "== chaos smoke: rwc simulate --days 2 --faults default --metrics /dev/null =="
dune exec bin/rwc.exe -- simulate --days 2 --faults default --metrics /dev/null

echo "== ci.sh: all green =="

#!/bin/sh
# Tier-1 CI: build, tests, and instrumented smoke runs.
#
#   bin/ci.sh
#
# Fails on: any build error, any test failure, or a non-zero exit from
# any smoke run.  Every lib/* stanza is held to a warning-free standard
# via `-warn-error +a` in its dune file, so a warning there IS a build
# error — no log scraping needed.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @check =="
dune build @check

echo "== dune build @all (warnings fatal in every lib/*) =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== instrumented smoke: rwc simulate --days 2 --metrics /dev/null =="
dune exec bin/rwc.exe -- simulate --days 2 --metrics /dev/null

echo "== chaos smoke: rwc chaos --days 2 --factor 1 --policy adaptive-stock --json =="
CHAOS_JSON="$(mktemp)"
dune exec bin/rwc.exe -- chaos --days 2 --factor 1 --policy adaptive-stock \
  --json "$CHAOS_JSON"
# The emitted degradation table must be non-empty JSON.
grep -q '"rows"' "$CHAOS_JSON"
grep -q '"vs_baseline_pct"' "$CHAOS_JSON"
rm -f "$CHAOS_JSON"

echo "== chaos rollout smoke: gated rows carry rollout counters in --json =="
CHAOS_JSON="$(mktemp)"
dune exec bin/rwc.exe -- chaos --days 1 --factor 1 --policy adaptive-stock \
  --rollout default --json "$CHAOS_JSON"
# Arming --rollout doubles the sweep into a (gated x ungated) grid: the
# JSON rows must flag which half they belong to, and the gated rows must
# surface the staged-commit counters alongside the degradation numbers.
grep -q '"gated": true' "$CHAOS_JSON"
grep -q '"gated": false' "$CHAOS_JSON"
grep -q '"links_admitted"' "$CHAOS_JSON"
grep -q '"waves_committed"' "$CHAOS_JSON"
rm -f "$CHAOS_JSON"

echo "== guard smoke: rwc simulate --days 2 --faults default --guard default =="
dune exec bin/rwc.exe -- simulate --days 2 --faults default --guard default \
  --metrics /dev/null

echo "== journal smoke: rwc simulate --journal + rwc explain =="
JOURNAL="$(mktemp)"
dune exec bin/rwc.exe -- simulate --days 2 --faults default --guard default \
  --journal "$JOURNAL" --slo default
# The journal must open with a run header and explain must reconstruct
# a non-empty per-link timeline from it.
head -1 "$JOURNAL" | grep -q '"ev":"run"'
EXPLAIN_OUT="$(mktemp)"
dune exec bin/rwc.exe -- explain --journal "$JOURNAL" --link 0 --slo default \
  > "$EXPLAIN_OUT"
grep -q 'commit' "$EXPLAIN_OUT"
grep -q 'SLO scorecard' "$EXPLAIN_OUT"
rm -f "$JOURNAL" "$EXPLAIN_OUT"

echo "== crash-resume smoke: crash faults must not change the bytes =="
RECOVER_DIR="$(mktemp -d)"
PLAIN_OUT="$(mktemp)"
CRASH_OUT="$(mktemp)"
PLAIN_JOURNAL="$(mktemp)"
CRASH_JOURNAL="$(mktemp)"
dune exec bin/rwc.exe -- simulate --days 2 --policy adaptive-stock \
  --faults default --journal "$PLAIN_JOURNAL" > "$PLAIN_OUT"
# The same plan plus a crash rule: the controller is killed at random
# sample boundaries and restarted in-process from its checkpoints.
# Recovery is byte-exact, so report and journal must not change.
dune exec bin/rwc.exe -- simulate --days 2 --policy adaptive-stock \
  --faults default,crash=0.05 --journal "$CRASH_JOURNAL" \
  --checkpoint "$RECOVER_DIR" --checkpoint-every 48 > "$CRASH_OUT"
diff "$PLAIN_OUT" "$CRASH_OUT"
cmp "$PLAIN_JOURNAL" "$CRASH_JOURNAL"
rm -rf "$RECOVER_DIR"
rm -f "$PLAIN_OUT" "$CRASH_OUT" "$PLAIN_JOURNAL" "$CRASH_JOURNAL"

echo "== domains smoke: --domains 4 must not change the bytes =="
# The multicore fleet engine's contract: any --domains width produces
# byte-identical reports and journals.  On runners with fewer than 4
# recommended domains the width is capped (with a stderr note) — the
# diff below stays valid either way, and the full 2/4/8-wide battery
# runs uncapped in `dune runtest` (test/test_par.ml drives the Runner
# config directly).
SEQ_OUT="$(mktemp)"
PAR_OUT="$(mktemp)"
SEQ_JOURNAL="$(mktemp)"
PAR_JOURNAL="$(mktemp)"
dune exec bin/rwc.exe -- simulate --days 2 --policy adaptive-efficient \
  --faults default --journal "$SEQ_JOURNAL" > "$SEQ_OUT"
dune exec bin/rwc.exe -- simulate --days 2 --policy adaptive-efficient \
  --faults default --journal "$PAR_JOURNAL" --domains 4 > "$PAR_OUT"
diff "$SEQ_OUT" "$PAR_OUT"
cmp "$SEQ_JOURNAL" "$PAR_JOURNAL"
dune exec bin/rwc.exe -- chaos --days 1 --factor 1 --policy adaptive-stock \
  > "$SEQ_OUT"
dune exec bin/rwc.exe -- chaos --days 1 --factor 1 --policy adaptive-stock \
  --domains 4 > "$PAR_OUT"
diff "$SEQ_OUT" "$PAR_OUT"
rm -f "$SEQ_OUT" "$PAR_OUT" "$SEQ_JOURNAL" "$PAR_JOURNAL"

echo "== torture smoke: kill/repair/resume at sampled storage boundaries =="
# Every sampled crash point must recover to the byte-identical report
# and journal through fsck + checkpoint/journal resume (exit 1 if any
# boundary fails; `rwc torture` without --quick enumerates them all).
dune exec bin/rwc.exe -- torture --quick
# Same battery with a staged rollout armed and its first gate forced to
# fail: crash points now land mid-wave, mid-bake and mid-rollback, and
# the resumed run must still replay to byte-identical output.
dune exec bin/rwc.exe -- torture --quick --rollout wave=2,bake=1800,fail-gate=1

echo "== fsck smoke: repair a deliberately damaged journal, then reverify =="
FSCK_JOURNAL="$(mktemp)"
FSCK_REPORT="$(mktemp)"
dune exec bin/rwc.exe -- simulate --days 2 --policy adaptive-stock \
  --faults default --journal "$FSCK_JOURNAL" > /dev/null
# Tear the tail mid-line (a crashed writer's torn final record) and
# verify fsck truncates it back, the repair report says so, explain
# reads the repaired journal, and a second fsck pass is clean.
FSCK_BYTES="$(wc -c < "$FSCK_JOURNAL")"
truncate -s "$((FSCK_BYTES - 17))" "$FSCK_JOURNAL"
printf '{"torn":tr' >> "$FSCK_JOURNAL"
dune exec bin/rwc.exe -- fsck --journal "$FSCK_JOURNAL" --json "$FSCK_REPORT"
grep -q '"torn journal tail"' "$FSCK_REPORT"
grep -q '"action": "repaired"' "$FSCK_REPORT"
dune exec bin/rwc.exe -- explain --journal "$FSCK_JOURNAL" --strict --link 0 \
  > /dev/null
dune exec bin/rwc.exe -- fsck --journal "$FSCK_JOURNAL" --json "$FSCK_REPORT"
grep -q '"findings": \[\]' "$FSCK_REPORT"
rm -f "$FSCK_JOURNAL" "$FSCK_REPORT"

echo "== serve smoke: live daemon RPCs, stream catch-up, SIGTERM checkpoint =="
# The daemon and its clients run from the already-built binary: dune
# exec would contend for the build lock with the backgrounded server.
RWC=./_build/default/bin/rwc.exe
SERVE_DIR="$(mktemp -d)"
SERVE_SOCK="$SERVE_DIR/rwc.sock"
"$RWC" serve --days 60 --policy adaptive-stock --faults default \
  --guard default --slo default --journal "$SERVE_DIR/journal.jsonl" \
  --socket "$SERVE_SOCK" --checkpoint "$SERVE_DIR/ckpt" \
  > "$SERVE_DIR/serve.out" &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -S "$SERVE_SOCK" ] && break; sleep 0.1; done
[ -S "$SERVE_SOCK" ]
# Query and what-if RPCs answer while the run is live.
"$RWC" watch --socket "$SERVE_SOCK" --rpc fleet.status | grep -q '"policy"'
"$RWC" watch --socket "$SERVE_SOCK" --rpc whatif.capacity \
  --params '{"link":0,"gbps":150}' | grep -q '"routed_gbps_after"'
# A subscriber catches up from the journal and receives events.
[ "$("$RWC" watch --socket "$SERVE_SOCK" --raw --from 0 --max-events 3 \
  | wc -l)" -eq 3 ]
# SIGTERM: stop at the next sample boundary, cut a final checkpoint,
# unlink the socket, exit 0.
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
ls "$SERVE_DIR/ckpt" | grep -q 'ckpt-'
[ ! -e "$SERVE_SOCK" ]
rm -rf "$SERVE_DIR"

echo "== serve rollout smoke: propose/approve RPCs, forced gate, rollback =="
# Full staged-rollout lifecycle against a live daemon: the plan's first
# health gate is forced to fail, so the run must commit a wave, fail the
# gate, roll every admitted link back, and journal the whole chain.
ROLL_DIR="$(mktemp -d)"
ROLL_SOCK="$ROLL_DIR/rwc.sock"
"$RWC" serve --days 2 --policy adaptive-stock --faults default --slo default \
  --journal "$ROLL_DIR/journal.jsonl" --socket "$ROLL_SOCK" \
  > "$ROLL_DIR/serve.out" &
ROLL_PID=$!
for _ in $(seq 1 100); do [ -S "$ROLL_SOCK" ] && break; sleep 0.1; done
[ -S "$ROLL_SOCK" ]
# Propose (retrying across the socket-up -> run-live startup gap), then
# approve.  Both are journal-first: the intent lands in the journal at
# RPC time and the effect applies at the next sample boundary.
PROPOSED=no
for _ in $(seq 1 50); do
  if "$RWC" watch --socket "$ROLL_SOCK" --rpc rollout.propose \
    --params '{"plan":"wave=2,bake=1800,fail-gate=1"}' 2>/dev/null \
    | grep -q '"rid"'; then PROPOSED=yes; break; fi
  sleep 0.1
done
[ "$PROPOSED" = yes ]
"$RWC" watch --socket "$ROLL_SOCK" --rpc rollout.approve | grep -q '"queued"'
# The run is short enough to finish on its own; its report must show the
# forced gate failure and the rollback it triggered.
for _ in $(seq 1 300); do
  grep -q 'rollout:' "$ROLL_DIR/serve.out" 2>/dev/null && break; sleep 0.2
done
grep -q 'gate-fail=1' "$ROLL_DIR/serve.out"
grep -Eq 'rolled-back= *[1-9]' "$ROLL_DIR/serve.out"
"$RWC" watch --socket "$ROLL_SOCK" --rpc server.shutdown > /dev/null
wait "$ROLL_PID"
# The journal must reconstruct the full chain for rollout 1.
ROLL_EXPLAIN="$(mktemp)"
"$RWC" explain --journal "$ROLL_DIR/journal.jsonl" --rollout 1 > "$ROLL_EXPLAIN"
grep -q 'rollout 1 chain:' "$ROLL_EXPLAIN"
grep -q '\[rollout\] proposed' "$ROLL_EXPLAIN"
grep -q '\[rollout\] approved' "$ROLL_EXPLAIN"
grep -q '\[rollout\] wave-committed' "$ROLL_EXPLAIN"
grep -q '\[rollout\] gate-failed' "$ROLL_EXPLAIN"
grep -q '\[rolled-back\] rolled-back' "$ROLL_EXPLAIN"
rm -f "$ROLL_EXPLAIN"
rm -rf "$ROLL_DIR"

echo "== obs overhead gate: bench --obs-only (ns budgets) =="
dune exec bench/main.exe -- --obs-only

echo "== perf gate: quick sweep vs committed BENCH_baseline.json =="
# Same deterministic workload that produced the committed baseline
# (seed, sizes and sim-days are part of the preset), diffed under the
# generous --ci tolerances: counts must match, timings may wobble a
# lot between runners but a blowup past 5x still fails the build.
# Refresh procedure on an intended perf change: DESIGN.md section 13.
BENCH_NEW="$(mktemp)"
dune exec bin/rwc.exe -- bench --quick --label baseline --out "$BENCH_NEW"
dune exec bin/rwc.exe -- perf diff --ci BENCH_baseline.json "$BENCH_NEW"
rm -f "$BENCH_NEW"

echo "== ci.sh: all green =="

(* Protection-aware capacity planning.

   The failure study (paper Section 2.2) shows WAN links fail for hours
   at a time, so important traffic rides a primary/backup pair of
   edge-disjoint paths.  This example plans such a pair on the
   backbone (Suurballe's algorithm), pins the protected traffic with
   the Section 4.2 masking - its links may not change capacity and its
   bandwidth is hidden from the optimizer - and then lets the
   augmentation place a capacity upgrade for everyone else around it.

   Run with:  dune exec examples/protection_planning.exe *)

module Graph = Rwc_flow.Graph
module Backbone = Rwc_topology.Backbone

let () =
  let bb = Backbone.north_america in
  let net = Rwc_sim.Netstate.make ~seed:77 bb in
  let g = Rwc_sim.Netstate.graph net in
  let name v = bb.Backbone.cities.(v).Backbone.name in
  let path_to_string p =
    match p with
    | [] -> "(empty)"
    | first :: _ ->
        let hops =
          List.map (fun eid -> name (Graph.edge g eid).Graph.dst) p
        in
        String.concat " > " (name (Graph.edge g first).Graph.src :: hops)
  in

  (* 1. An edge-disjoint primary/backup pair for a protected 80 Gbps
        service Chicago -> Miami, minimizing total fiber distance. *)
  let src = Backbone.city_index bb "Chicago" in
  let dst = Backbone.city_index bb "Miami" in
  let km = Graph.map_edges g (fun e ->
      (e.Graph.capacity, bb.Backbone.ducts.(e.Graph.tag).Backbone.route_km, e.Graph.tag))
  in
  (match Rwc_flow.Disjoint.shortest_pair km ~src ~dst with
  | None -> print_endline "backbone is not 2-edge-connected here"
  | Some pair ->
      Printf.printf "protected service %s -> %s (80 Gbps):\n" (name src) (name dst);
      Printf.printf "  primary (%.0f km): %s\n"
        (Rwc_flow.Shortest.path_cost km pair.Rwc_flow.Disjoint.primary)
        (path_to_string pair.Rwc_flow.Disjoint.primary);
      Printf.printf "  backup  (%.0f km): %s\n"
        (Rwc_flow.Shortest.path_cost km pair.Rwc_flow.Disjoint.backup)
        (path_to_string pair.Rwc_flow.Disjoint.backup);

      (* 2. Pin both paths: masked capacity, frozen fake edges. *)
      let protected_flows =
        [
          { Rwc_core.Protect.path = pair.Rwc_flow.Disjoint.primary; gbps = 80.0 };
          { Rwc_core.Protect.path = pair.Rwc_flow.Disjoint.backup; gbps = 80.0 };
        ]
      in
      let masked = Rwc_core.Protect.mask g protected_flows in
      let frozen =
        Array.to_list masked.Rwc_core.Protect.frozen
        |> List.filteri (fun _ f -> f)
        |> List.length
      in
      Printf.printf "\n%d directed edges frozen (no capacity changes allowed there)\n"
        frozen;

      (* 3. Plan a NY->LA upgrade around the protected service. *)
      let headroom =
        Rwc_core.Protect.restrict_headroom masked (fun e ->
            Rwc_sim.Netstate.headroom
              net.Rwc_sim.Netstate.ducts.((Graph.edge g e).Graph.tag))
      in
      let aug =
        Rwc_core.Augment.build ~headroom ~penalty:(Rwc_core.Penalty.Uniform 1.0)
          masked.Rwc_core.Protect.graph
      in
      let ny = Backbone.city_index bb "NewYork" in
      let la = Backbone.city_index bb "LosAngeles" in
      let r =
        Rwc_flow.Mincost.solve ~limit:1500.0 aug.Rwc_core.Augment.graph ~src:ny
          ~dst:la
      in
      let ds = Rwc_core.Translate.decisions aug ~flow:r.Rwc_flow.Mincost.flow in
      Printf.printf
        "NY->LA upgrade plan around it: %.0f Gbps routed, %d upgrades\n"
        r.Rwc_flow.Mincost.value (List.length ds);
      match Rwc_core.Protect.validate_decisions masked ds with
      | Ok () -> print_endline "validated: no upgrade touches the protected paths"
      | Error e -> Printf.printf "VIOLATION: %s\n" e)

(* Failure replay: the paper's availability argument on one link.

   Generates 2.5 years of SNR telemetry for a wavelength whose fiber
   suffers dips and outages, then replays it under three disciplines:
   today's static 100G binary up/down, a static 200G (more capacity,
   more failures), and the run/walk/crawl adaptive controller with a
   stock vs efficient BVT.  Also regenerates the failure-ticket
   breakdown of Figure 4.

   Run with:  dune exec examples/failure_replay.exe *)

module Availability = Rwc_core.Availability
module Tickets = Rwc_telemetry.Tickets

let () =
  (* A link whose baseline supports 200G with little margin - exactly
     the kind the paper says you must not run statically at 200G. *)
  let params = Rwc_telemetry.Snr_model.default_params ~baseline_db:13.4 () in
  let rng = Rwc_stats.Rng.create 99 in
  let trace, _ = Rwc_telemetry.Snr_model.generate rng params ~years:2.5 in
  Printf.printf "replaying %.1f years of 15-minute SNR samples (baseline %.1f dB)\n\n"
    2.5 params.Rwc_telemetry.Snr_model.baseline_db;
  let adaptive downtime =
    Availability.Adaptive
      { config = Rwc_core.Adapt.default_config; reconfig_downtime_s = downtime }
  in
  let policies =
    [
      ("static 100G (today)", Availability.Static 100);
      ("static 200G (no adaptation)", Availability.Static 200);
      ("adaptive, stock BVT (68 s)", adaptive 68.0);
      ("adaptive, efficient BVT (35 ms)", adaptive 0.035);
    ]
  in
  Printf.printf "%-32s %10s %10s %6s %6s %6s %12s\n" "policy" "avail"
    "mean Gbps" "fail" "flap" "up" "downtime (s)";
  List.iter
    (fun (name, p) ->
      let o = Availability.evaluate p trace in
      Printf.printf "%-32s %10.5f %10.1f %6d %6d %6d %12.1f\n" name
        o.Availability.availability o.Availability.mean_capacity_gbps
        o.Availability.failures o.Availability.flaps o.Availability.upshifts
        o.Availability.reconfig_downtime_s)
    policies;

  (* The fleet-wide ticket story (Figure 4). *)
  let tickets = Tickets.generate (Rwc_stats.Rng.create 7) ~n:250 in
  Printf.printf "\n250 failure tickets by root cause (frequency%% / outage-time%%):\n";
  let freq = Tickets.frequency_percent tickets in
  let dur = Tickets.duration_percent tickets in
  List.iter
    (fun c ->
      Printf.printf "  %-13s %5.1f%% / %5.1f%%\n" (Tickets.cause_name c)
        (List.assoc c freq) (List.assoc c dur))
    Tickets.all_causes;
  Printf.printf
    "\n%.0f%% of events are not fiber cuts (opportunity area); %.0f%% kept\n"
    (100.0 *. Tickets.opportunity_fraction tickets)
    (100.0 *. Tickets.salvageable_fraction tickets);
  Printf.printf
    "SNR >= 3 dB and could have crawled at 50 Gbps instead of failing.\n"

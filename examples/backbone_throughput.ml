(* Backbone throughput: the end-to-end simulation, shortened.

   Drives the 24-city backbone for two weeks under each operating
   policy: static 100G wavelengths (today), static-at-maximum (more
   capacity but failure-prone), and the run/walk/crawl adaptive policy
   with both BVT reconfiguration procedures.

   Run with:  dune exec examples/backbone_throughput.exe
   (takes roughly a minute: every topology change triggers a TE
   recomputation, as in a production controller) *)

let () =
  let config =
    { Rwc_sim.Runner.default_config with Rwc_sim.Runner.days = 14.0 }
  in
  Printf.printf
    "simulating %.0f days on the %d-duct North-American backbone...\n\n"
    config.Rwc_sim.Runner.days
    (Array.length Rwc_topology.Backbone.north_america.Rwc_topology.Backbone.ducts);
  let reports = Rwc_sim.Runner.compare_policies ~config () in
  List.iter (fun r -> Format.printf "%a@." Rwc_sim.Runner.pp_report r) reports;
  let find p = List.find (fun r -> r.Rwc_sim.Runner.policy = p) reports in
  let static = find Rwc_sim.Runner.Static_100 in
  let adaptive = find (Rwc_sim.Runner.Adaptive Rwc_sim.Runner.Efficient) in
  Printf.printf
    "\nadaptive capacity delivered %.0f%% more traffic than the static 100G network\n"
    (100.0
    *. ((adaptive.Rwc_sim.Runner.avg_throughput_gbps
        /. static.Rwc_sim.Runner.avg_throughput_gbps)
       -. 1.0));
  Printf.printf
    "while turning hard failures into capacity flaps (%d failures vs %d flaps).\n"
    adaptive.Rwc_sim.Runner.failures adaptive.Rwc_sim.Runner.flaps

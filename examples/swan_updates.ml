(* SWAN-style operation end-to-end: priority-class allocation on the
   backbone, a capacity upgrade decided through the paper's graph
   abstraction, a congestion-free update sequence to move traffic onto
   the new routing, and the orchestrated execution of the change.

   Run with:  dune exec examples/swan_updates.exe *)

module Graph = Rwc_flow.Graph
module Backbone = Rwc_topology.Backbone

let () =
  let bb = Backbone.north_america in
  let net = Rwc_sim.Netstate.make ~seed:31 bb in
  let g = Rwc_sim.Netstate.graph net in

  (* 1. Priority-class demands: interactive between the biggest metros,
        elastic and background everywhere else. *)
  let gravity =
    Rwc_topology.Traffic.top_k
      (Rwc_topology.Traffic.gravity bb ~total_gbps:18_000.0)
      24
  in
  let demands =
    List.mapi
      (fun i d ->
        let klass =
          if i < 6 then Rwc_core.Swan.Interactive
          else if i < 15 then Rwc_core.Swan.Elastic
          else Rwc_core.Swan.Background
        in
        {
          Rwc_core.Swan.src = d.Rwc_topology.Traffic.src;
          dst = d.Rwc_topology.Traffic.dst;
          gbps = d.Rwc_topology.Traffic.gbps;
          klass;
        })
      gravity
  in
  let before = Rwc_core.Swan.allocate ~epsilon:0.15 g demands in
  Printf.printf "allocation on today's topology: %.0f Gbps total\n"
    before.Rwc_core.Swan.routed_gbps;
  List.iter
    (fun (k, r) ->
      Printf.printf "  %-12s %8.0f Gbps\n" (Rwc_core.Swan.klass_name k)
        r.Rwc_core.Te.total_gbps)
    before.Rwc_core.Swan.per_class;

  (* 2. Upgrade decisions via the augmentation (Algorithm 1). *)
  let headroom e =
    Rwc_sim.Netstate.headroom
      net.Rwc_sim.Netstate.ducts.((Graph.edge g e).Graph.tag)
  in
  let aug =
    Rwc_core.Augment.build
      ~weight:(fun e -> (Graph.edge g e).Graph.cost)
      ~headroom
      ~penalty:(Rwc_core.Penalty.Traffic_proportional before.Rwc_core.Swan.flow)
      g
  in
  let src = Backbone.city_index bb "NewYork"
  and dst = Backbone.city_index bb "LosAngeles" in
  let plan_flow =
    Rwc_flow.Mincost.solve ~limit:1500.0 aug.Rwc_core.Augment.graph ~src ~dst
  in
  let decisions =
    Rwc_core.Translate.decisions aug ~flow:plan_flow.Rwc_flow.Mincost.flow
  in
  Printf.printf "\nupgrade plan for +1500 Gbps NY->LA: %d links, +%.0f Gbps\n"
    (List.length decisions)
    (Rwc_core.Translate.total_extra decisions);

  (* 3. Allocation once run/walk/crawl raises EVERY link to its
        SNR-feasible rate (the targeted plan above upgrades only the
        three links the NY->LA demand needs; the adaptive policy
        eventually lifts the whole fleet). *)
  let upgraded =
    Graph.map_edges g (fun e ->
        (e.Graph.capacity +. headroom e.Graph.id, e.Graph.cost, e.Graph.tag))
  in
  let after = Rwc_core.Swan.allocate ~epsilon:0.15 upgraded demands in
  Printf.printf "allocation on the fully adaptive topology: %.0f Gbps total\n"
    after.Rwc_core.Swan.routed_gbps;
  List.iter
    (fun (k, r) ->
      Printf.printf "  %-12s %8.0f Gbps\n" (Rwc_core.Swan.klass_name k)
        r.Rwc_core.Te.total_gbps)
    after.Rwc_core.Swan.per_class;

  (* 4. Congestion-free transition between the two routings. *)
  let capacity =
    Array.init (Graph.n_edges g) (fun i -> (Graph.edge upgraded i).Graph.capacity)
  in
  (* Scale both configurations into the slack envelope, as SWAN does by
     reserving scratch capacity. *)
  let slack = 0.1 in
  let bound cfg =
    Array.mapi (fun i f -> Float.min f ((1.0 -. slack) *. capacity.(i))) cfg
  in
  (match
     Rwc_core.Swan.update_plan ~slack ~capacity
       ~old_flow:(bound before.Rwc_core.Swan.flow)
       ~new_flow:(bound after.Rwc_core.Swan.flow)
   with
  | Error e -> Printf.printf "update plan: %s\n" e
  | Ok plan ->
      Printf.printf
        "congestion-free transition: %d steps at %.0f%% scratch capacity (safe: %b)\n"
        (List.length plan.Rwc_core.Swan.steps)
        (100.0 *. slack)
        (Rwc_core.Swan.plan_is_congestion_free ~capacity
           ~old_flow:(bound before.Rwc_core.Swan.flow) plan));

  (* 5. Execute the physical changes: drained links, efficient BVTs. *)
  let o =
    Rwc_sim.Orchestrator.execute
      ~rng:(Rwc_stats.Rng.create 32)
      ~upgrades:decisions
      ~residual_flow:(fun _ -> 0.0)
      ~downtime_mean_s:0.035 ()
  in
  Printf.printf
    "orchestrated execution: %d reconfigurations in %.1f s, %.1f Gbit disrupted\n"
    o.Rwc_sim.Orchestrator.reconfigurations o.Rwc_sim.Orchestrator.total_duration_s
    o.Rwc_sim.Orchestrator.disrupted_gbit

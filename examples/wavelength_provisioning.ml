(* Wavelength provisioning on a WDM line system.

   Lights wavelengths on two fiber ducts of different lengths and shows
   how route length and band position bound the feasible rate per
   channel - the physical-layer reality behind the fleet's capacity
   distribution (Figure 2b).

   Run with:  dune exec examples/wavelength_provisioning.exe *)

module Ls = Rwc_optical.Line_system
module Fiber = Rwc_optical.Fiber

let provision name km requests =
  let line = Fiber.line_of_route_km km in
  let t = Ls.create ~line () in
  Printf.printf "%s (%.0f km, OSNR %.1f dB at band centre):\n" name km
    (Fiber.osnr_db line);
  Printf.printf "  best rate by band position: centre %d Gbps, edge %d Gbps\n"
    (Ls.best_rate_gbps t 47) (Ls.best_rate_gbps t 0);
  List.iter
    (fun gbps ->
      match Ls.light t ~gbps () with
      | Ok ch ->
          Printf.printf "  lit %3d Gbps on channel %2d (%.2f nm, OSNR %.1f dB)\n"
            gbps ch (Ls.wavelength_nm ch) (Ls.channel_osnr_db t ch)
      | Error e -> Printf.printf "  cannot light %3d Gbps: %s\n" gbps e)
    requests;
  Printf.printf "  duct IP capacity: %d Gbps over %d wavelengths\n\n"
    (Ls.capacity_gbps t) (Ls.lit_count t)

let () =
  provision "metro duct" 400.0 [ 200; 200; 200; 150 ];
  provision "long-haul duct" 2600.0 [ 200; 175; 150; 100 ];
  (* The run/walk/crawl idea at the wavelength level: when a long-haul
     duct degrades, re-light the same channel at a lower rate instead
     of leaving it dark. *)
  let line = Fiber.line_of_route_km 2600.0 in
  let t = Ls.create ~line () in
  (match Ls.light t ~channel:10 ~gbps:150 () with
  | Ok _ -> print_endline "channel 10 carrying 150 Gbps"
  | Error e -> print_endline e);
  (match Ls.extinguish t 10 with Ok () -> () | Error e -> print_endline e);
  match Ls.light t ~channel:10 ~gbps:100 () with
  | Ok _ ->
      Printf.printf "after SNR degradation: crawled channel 10 down to 100 Gbps\n"
  | Error e -> print_endline e

(* Quickstart: the paper's abstraction in ~60 lines.

   Build a tiny WAN, declare which links have SNR headroom, augment the
   topology (Algorithm 1), run an UNMODIFIED traffic-engineering solver
   on it, and read back which links to upgrade.

   Run with:  dune exec examples/quickstart.exe *)

module Graph = Rwc_flow.Graph

let () =
  (* 1. The physical topology: a triangle of 100 Gbps links.
        0 --- 1 --- 2, plus a direct 0 --- 2. *)
  let g = Graph.create ~n:3 in
  let e01 = Graph.add_edge g ~src:0 ~dst:1 ~capacity:100.0 ~cost:0.0 "0-1" in
  let e12 = Graph.add_edge g ~src:1 ~dst:2 ~capacity:100.0 ~cost:0.0 "1-2" in
  let e02 = Graph.add_edge g ~src:0 ~dst:2 ~capacity:100.0 ~cost:0.0 "0-2" in

  (* 2. Physical-layer telemetry says the direct 0-2 link has a high
        SNR: 16 dB supports the 200 Gbps denomination (16 >= 12.5),
        i.e. 100 Gbps of headroom.  The others have no slack. *)
  let snr = function
    | e when e = e02 -> 16.0
    | e when e = e01 -> 7.0
    | _ -> 7.2
  in
  let headroom e =
    let feasible = Rwc_optical.Modulation.feasible_gbps (snr e) in
    Float.max 0.0 (float_of_int feasible -. (Graph.edge g e).Graph.capacity)
  in

  (* 3. Algorithm 1: augment with fake links.  Upgrading costs 10 per
        Gbps of fake traffic (an operator-chosen penalty). *)
  let aug =
    Rwc_core.Augment.build ~headroom
      ~penalty:(Rwc_core.Penalty.Uniform 10.0) g
  in
  Printf.printf "physical edges: %d, augmented edges: %d\n"
    (Graph.n_edges g)
    (Graph.n_edges aug.Rwc_core.Augment.graph);

  (* 4. An unmodified TE computation on the augmented graph: ship as
        much of a 250 Gbps demand from 0 to 2 as possible, cheaply.
        The real topology only carries 200 (100 direct + 100 via node
        1), so satisfying it requires the fake capacity. *)
  let r =
    Rwc_flow.Mincost.solve ~limit:250.0 aug.Rwc_core.Augment.graph ~src:0
      ~dst:2
  in
  Printf.printf "routed %.0f Gbps of the 250 Gbps demand (cost %.0f)\n"
    r.Rwc_flow.Mincost.value r.Rwc_flow.Mincost.cost;

  (* 5. Translate the flow back into upgrade decisions. *)
  let decisions =
    Rwc_core.Translate.decisions aug ~flow:r.Rwc_flow.Mincost.flow
  in
  List.iter
    (fun d ->
      let name = (Graph.edge g d.Rwc_core.Translate.phys_edge).Graph.tag in
      let snap =
        Rwc_core.Translate.snapped_capacity ~current_gbps:100.0
          ~extra_gbps:d.Rwc_core.Translate.extra_gbps
      in
      Printf.printf
        "upgrade link %s: +%.0f Gbps of fake-edge traffic -> reconfigure to %s\n"
        name d.Rwc_core.Translate.extra_gbps
        (match snap with
        | Some gbps -> Printf.sprintf "%d Gbps" gbps
        | None -> "beyond hardware"))
    decisions;
  ignore e12;

  (* 6. Sanity: the upgraded topology really carries the routed flow. *)
  let upgraded = Rwc_core.Translate.apply g decisions in
  let check = Rwc_flow.Maxflow.solve upgraded ~src:0 ~dst:2 in
  Printf.printf "max-flow after applying upgrades: %.0f Gbps\n"
    check.Rwc_flow.Maxflow.value

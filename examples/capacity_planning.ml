(* Capacity planning on the North-American backbone.

   Derives each duct's upgrade headroom from its physical route length
   (long routes have less SNR margin), augments the backbone, asks the
   TE layer where extra traffic between the largest metro pairs should
   go, and prints the upgrade plan together with a two-stage
   consistent-update schedule that avoids routing over links while
   their transceivers are being reprogrammed.

   Run with:  dune exec examples/capacity_planning.exe *)

module Graph = Rwc_flow.Graph
module Backbone = Rwc_topology.Backbone

let () =
  let bb = Backbone.north_america in
  let net = Rwc_sim.Netstate.make ~seed:2024 bb in
  let g = Rwc_sim.Netstate.graph net in
  let duct_of e = (Graph.edge g e).Graph.tag in
  let headroom e =
    Rwc_sim.Netstate.headroom net.Rwc_sim.Netstate.ducts.(duct_of e)
  in
  Printf.printf "backbone: %d cities, %d ducts\n" (Backbone.n_cities bb)
    (Array.length bb.Backbone.ducts);
  let upgradable =
    Graph.fold_edges
      (fun acc e -> if headroom e.Graph.id > 0.0 then acc + 1 else acc)
      0 g
  in
  Printf.printf "%d of %d directed edges have SNR headroom\n" upgradable
    (Graph.n_edges g);

  (* Traffic currently on the network (a routed gravity matrix) becomes
     the penalty: upgrading a busy link disrupts more traffic. *)
  let demands =
    Rwc_topology.Traffic.top_k
      (Rwc_topology.Traffic.gravity bb ~total_gbps:14_000.0)
      30
  in
  let commodities = Rwc_topology.Traffic.to_commodities demands in
  let current = Rwc_core.Te.mcf ~epsilon:0.15 g commodities in
  Printf.printf "current TE round routes %.0f Gbps\n"
    current.Rwc_core.Te.total_gbps;

  (* Plan on the RESIDUAL network: what is left after the current
     traffic, so the answer reflects the network as it is running. *)
  let residual =
    Graph.map_edges g (fun e ->
        ( Float.max 0.0 (e.Graph.capacity -. current.Rwc_core.Te.flow.(e.Graph.id)),
          e.Graph.cost,
          e.Graph.tag ))
  in
  let aug =
    Rwc_core.Augment.build ~headroom
      ~penalty:(Rwc_core.Penalty.Traffic_proportional current.Rwc_core.Te.flow)
      residual
  in

  (* Where would the network put 1200 extra Gbps between NY and LA? *)
  let src = Backbone.city_index bb "NewYork" in
  let dst = Backbone.city_index bb "LosAngeles" in
  let r =
    Rwc_flow.Mincost.solve ~limit:1200.0 aug.Rwc_core.Augment.graph ~src ~dst
  in
  Printf.printf "\nplanning +1200 Gbps NewYork -> LosAngeles: routed %.0f Gbps\n"
    r.Rwc_flow.Mincost.value;
  let decisions = Rwc_core.Translate.decisions aug ~flow:r.Rwc_flow.Mincost.flow in
  if decisions = [] then
    print_endline "no upgrades needed: existing capacity absorbs the demand"
  else begin
    Printf.printf "upgrade plan (%d links, +%.0f Gbps, penalty %.0f):\n"
      (List.length decisions)
      (Rwc_core.Translate.total_extra decisions)
      (Rwc_core.Translate.total_penalty decisions);
    List.iter
      (fun d ->
        let duct = bb.Backbone.ducts.(duct_of d.Rwc_core.Translate.phys_edge) in
        Printf.printf "  %-14s - %-14s  +%.0f Gbps (route %.0f km)\n"
          bb.Backbone.cities.(duct.Backbone.a).Backbone.name
          bb.Backbone.cities.(duct.Backbone.b).Backbone.name
          d.Rwc_core.Translate.extra_gbps duct.Backbone.route_km)
      decisions;

    (* Two-stage consistent update: route around the links while their
       BVTs are reprogrammed. *)
    let plan =
      Rwc_core.Consistent_update.plan ~epsilon:0.15 g ~upgrades:decisions
        commodities
    in
    Printf.printf
      "\nconsistent update: transitional routing carries %.0f Gbps (%s), final %.0f Gbps\n"
      plan.Rwc_core.Consistent_update.transitional.Rwc_core.Te.total_gbps
      (if plan.Rwc_core.Consistent_update.fully_served_during_update then
         "hitless"
       else "NOT hitless - schedule in a low-traffic window")
      plan.Rwc_core.Consistent_update.final.Rwc_core.Te.total_gbps
  end
